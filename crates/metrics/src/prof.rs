//! Always-compiled, runtime-gated time-breakdown profiler.
//!
//! `netperf` used to report a single events/sec figure per scenario, which
//! says nothing about *where* the time goes — PHY error draws, MAC tone
//! observations, channel CSI derivation, cluster election/formation at
//! round boundaries, or the snapshot trackers.  This module attributes
//! wall time and event counts to a fixed [`ProfKey`] vocabulary (one slot
//! per subsystem and one per `EventKind`) with the cheapest machinery that
//! still merges correctly:
//!
//! * **Fixed arrays, no allocation.** A [`Profile`] is two `[u64; N]`
//!   arrays indexed by `ProfKey as usize` — no `HashMap`, no heap traffic
//!   on the hot path.
//! * **One branch when disabled.** Every instrumentation site starts with
//!   [`clock`] / [`Span::start`], which reads one relaxed [`AtomicBool`]
//!   and returns `None` when profiling is off; the `Instant` syscalls and
//!   the array adds are never reached.  Simulation state (RNG streams,
//!   event order) is **never** touched either way, so a profiled run is
//!   bit-identical to a clean run — only wall clocks are read.
//! * **Commutative shards.** `Profile` implements [`Commute`] with exact
//!   integer addition: per-run, per-thread and per-worker shards fold in
//!   any order or tree into the same totals, exactly like
//!   `ConcurrentStats`.  The process-wide [`SharedProfile`] behind
//!   [`global`] accumulates finished shards through relaxed atomic adds
//!   (each field independently commutative, so no cross-field race can
//!   corrupt a count).
//!
//! Reporting is carcara-style: a [`Breakdown`] folds one labelled
//! [`Profile`] observation per scenario into per-key share statistics
//! (mean ± σ plus min/max *with the offending scenario label*), rendered
//! as aligned text by [`Breakdown::render`] and serialized by the bench
//! layer into the `time_breakdown` section of `BENCH_netperf.json`.
//!
//! For single runs, [`start_trace`] additionally records every [`Span`]
//! (event-kind dispatch runs, election/formation, snapshots, collector
//! batches — the coarse spans, not the per-event subsystem slices) into a
//! bounded buffer exported as Chrome trace-event JSON
//! (`chrome://tracing` / Perfetto) by [`stop_trace_json`].
//!
//! Timing columns are measurements and vary run to run; the **count**
//! columns are derived from the deterministic event schedule and are
//! reproducible bit-for-bit, which is what the CI regression gate's
//! schema checks key on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::merge::Commute;
use caem_simcore::stats::RunningStats;

// ---------------------------------------------------------------------------
// The key vocabulary.
// ---------------------------------------------------------------------------

/// One slot of the profile: a simulator subsystem or an `EventKind`.
///
/// Subsystem spans are *nested inside* event-kind spans (a MAC slice runs
/// inside a `sense_channel` dispatch run), so the two groups are separate
/// dimensions of the same wall time, not a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfKey {
    /// Node-table deployment (positions, batteries, per-node state columns).
    Deploy = 0,
    /// LEACH head election at a round boundary.
    ClusterElection,
    /// Cluster formation (nearest-head assignment + per-node round setup).
    ClusterFormation,
    /// Tone-MAC state machinery (observations, backoff decisions).
    Mac,
    /// Channel CSI derivation (path loss, shadowing, fading measurement).
    Channel,
    /// PHY work (mode selection, packet-error draws).
    Phy,
    /// Metric snapshot trackers (energy + fairness sampling).
    StatsSnapshot,
    /// Record queue/collector path (sink batches, report aggregation).
    Collector,
    /// `RoundStart` dispatch runs.
    EvRoundStart,
    /// `PacketArrival` dispatch runs.
    EvPacketArrival,
    /// `SenseChannel` dispatch runs.
    EvSenseChannel,
    /// `BackoffExpired` dispatch runs.
    EvBackoffExpired,
    /// `TransmissionComplete` dispatch runs.
    EvTransmissionComplete,
    /// `NodeFailure` dispatch runs.
    EvNodeFailure,
    /// `EnergySnapshot` dispatch runs.
    EvEnergySnapshot,
    /// `FairnessSnapshot` dispatch runs.
    EvFairnessSnapshot,
}

/// Every [`ProfKey`], in slot order.
pub const PROF_KEYS: [ProfKey; ProfKey::COUNT] = [
    ProfKey::Deploy,
    ProfKey::ClusterElection,
    ProfKey::ClusterFormation,
    ProfKey::Mac,
    ProfKey::Channel,
    ProfKey::Phy,
    ProfKey::StatsSnapshot,
    ProfKey::Collector,
    ProfKey::EvRoundStart,
    ProfKey::EvPacketArrival,
    ProfKey::EvSenseChannel,
    ProfKey::EvBackoffExpired,
    ProfKey::EvTransmissionComplete,
    ProfKey::EvNodeFailure,
    ProfKey::EvEnergySnapshot,
    ProfKey::EvFairnessSnapshot,
];

impl ProfKey {
    /// Number of profile slots.
    pub const COUNT: usize = 16;
    /// First event-kind slot; everything below is a subsystem.
    const EVENT_BASE: usize = 8;

    /// This key's fixed array slot.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether this key names a subsystem (as opposed to an `EventKind`).
    #[inline]
    pub const fn is_subsystem(self) -> bool {
        (self as usize) < Self::EVENT_BASE
    }

    /// Stable snake-case label, used in tables, JSON and budget files.
    pub const fn label(self) -> &'static str {
        match self {
            ProfKey::Deploy => "deploy",
            ProfKey::ClusterElection => "cluster_election",
            ProfKey::ClusterFormation => "cluster_formation",
            ProfKey::Mac => "mac",
            ProfKey::Channel => "channel",
            ProfKey::Phy => "phy",
            ProfKey::StatsSnapshot => "stats_snapshot",
            ProfKey::Collector => "collector",
            ProfKey::EvRoundStart => "round_start",
            ProfKey::EvPacketArrival => "packet_arrival",
            ProfKey::EvSenseChannel => "sense_channel",
            ProfKey::EvBackoffExpired => "backoff_expired",
            ProfKey::EvTransmissionComplete => "transmission_complete",
            ProfKey::EvNodeFailure => "node_failure",
            ProfKey::EvEnergySnapshot => "energy_snapshot",
            ProfKey::EvFairnessSnapshot => "fairness_snapshot",
        }
    }

    /// Look a key up by its [`ProfKey::label`].
    pub fn from_label(label: &str) -> Option<ProfKey> {
        PROF_KEYS.iter().copied().find(|k| k.label() == label)
    }
}

// ---------------------------------------------------------------------------
// The runtime gate.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is currently enabled (one relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the profiler on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Environment variable that enables profiling in spawned worker
/// processes (any non-empty value).
pub const PROFILE_ENV: &str = "CAEM_PROFILE";

/// Enable the profiler when [`PROFILE_ENV`] is set in the environment —
/// how distributed worker processes inherit the coordinator's `--profile`.
pub fn install_from_env() {
    if std::env::var(PROFILE_ENV).is_ok_and(|v| !v.is_empty()) {
        set_enabled(true);
    }
}

/// `Some(now)` when profiling is enabled, `None` (no syscall) otherwise.
/// The manual counterpart of [`Span`] for untraced per-event slices.
#[inline(always)]
pub fn clock() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Test-only synthetic slowdown (exercised by the CI regression gate).
// ---------------------------------------------------------------------------

/// Environment variable injecting a synthetic busy-wait (microseconds) into
/// the MAC span of every tone observation, **only while profiling is
/// enabled**.  Exists solely so CI can prove the budget gate fails on a
/// real regression; it never perturbs simulation state (virtual time and
/// RNG draws are untouched).
pub const SELFTEST_SPIN_ENV: &str = "CAEM_PROF_SELFTEST_SPIN_US";

static SELFTEST_SPIN_NANOS: OnceLock<u64> = OnceLock::new();

/// The configured synthetic MAC slowdown in nanoseconds (0 = off).
pub fn selftest_spin_nanos() -> u64 {
    *SELFTEST_SPIN_NANOS.get_or_init(|| {
        std::env::var(SELFTEST_SPIN_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(|us| us.saturating_mul(1_000))
            .unwrap_or(0)
    })
}

/// Busy-wait for the configured synthetic slowdown (no-op when unset).
#[inline]
pub fn selftest_spin() {
    let budget = selftest_spin_nanos();
    if budget > 0 {
        let started = Instant::now();
        while (started.elapsed().as_nanos() as u64) < budget {
            std::hint::spin_loop();
        }
    }
}

// ---------------------------------------------------------------------------
// The shard type.
// ---------------------------------------------------------------------------

/// One profiling shard: event counts and wall nanoseconds per [`ProfKey`].
///
/// Plain data with exact integer merge — the [`Commute`] law holds
/// bit-for-bit over any partition and any merge tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    counts: [u64; ProfKey::COUNT],
    nanos: [u64; ProfKey::COUNT],
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute `count` events and `nanos` wall nanoseconds to `key`.
    #[inline]
    pub fn add(&mut self, key: ProfKey, count: u64, nanos: u64) {
        let i = key.index();
        self.counts[i] += count;
        self.nanos[i] += nanos;
    }

    /// Events attributed to `key`.
    #[inline]
    pub fn count(&self, key: ProfKey) -> u64 {
        self.counts[key.index()]
    }

    /// Wall nanoseconds attributed to `key`.
    #[inline]
    pub fn nanos(&self, key: ProfKey) -> u64 {
        self.nanos[key.index()]
    }

    /// Total wall nanoseconds across the event-kind slots — the event
    /// loop's attributed dispatch time.
    pub fn total_event_nanos(&self) -> u64 {
        PROF_KEYS
            .iter()
            .filter(|k| !k.is_subsystem())
            .map(|&k| self.nanos(k))
            .sum()
    }

    /// Total attributed wall nanoseconds: the event-loop time plus the
    /// out-of-loop subsystems (deploy, collector).  The share denominator.
    pub fn attributed_nanos(&self) -> u64 {
        self.total_event_nanos() + self.nanos(ProfKey::Deploy) + self.nanos(ProfKey::Collector)
    }

    /// `key`'s fraction of the attributed wall time (0 when nothing was
    /// attributed).  Subsystem slices nest inside event spans, so shares
    /// do not sum to 1 across both groups.
    pub fn share(&self, key: ProfKey) -> f64 {
        let total = self.attributed_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos(key) as f64 / total as f64
        }
    }

    /// Whether nothing was ever attributed (the disabled-profiler case).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0) && self.nanos.iter().all(|&n| n == 0)
    }

    /// Absorb another shard (exact integer addition per slot).
    pub fn merge(&mut self, other: &Profile) {
        for i in 0..ProfKey::COUNT {
            self.counts[i] += other.counts[i];
            self.nanos[i] += other.nanos[i];
        }
    }

    /// The per-slot difference `self - earlier` (saturating) — what a tick
    /// of the stress harness attributes between two snapshots.
    pub fn delta_since(&self, earlier: &Profile) -> Profile {
        let mut delta = Profile::new();
        for i in 0..ProfKey::COUNT {
            delta.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
            delta.nanos[i] = self.nanos[i].saturating_sub(earlier.nanos[i]);
        }
        delta
    }
}

impl Commute for Profile {
    fn commute(&mut self, other: Self) {
        self.merge(&other);
    }
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// A coarse timed region: holds the start instant only while profiling is
/// enabled, attributes its wall time on [`Span::stop`], and feeds the
/// Chrome trace buffer when tracing is active.
#[must_use = "a span only records when stopped"]
pub struct Span {
    start: Option<Instant>,
}

impl Span {
    /// Open a span (one branch + no syscall when profiling is disabled).
    #[inline]
    pub fn start() -> Self {
        Span { start: clock() }
    }

    /// Close the span into a local shard.
    #[inline]
    pub fn stop(self, profile: &mut Profile, key: ProfKey, count: u64) {
        if let Some(t0) = self.start {
            let nanos = t0.elapsed().as_nanos() as u64;
            profile.add(key, count, nanos);
            trace_record(key, t0, nanos);
        }
    }

    /// Close the span straight into the process-wide [`global`] profile —
    /// for sites without a local shard (collector drainer, deployment).
    #[inline]
    pub fn stop_global(self, key: ProfKey, count: u64) {
        if let Some(t0) = self.start {
            let nanos = t0.elapsed().as_nanos() as u64;
            global().add(key, count, nanos);
            trace_record(key, t0, nanos);
        }
    }
}

// ---------------------------------------------------------------------------
// The process-wide accumulator.
// ---------------------------------------------------------------------------

/// A `Profile` whose slots are relaxed atomics: finished shards and
/// cross-thread sites fold into it concurrently.  Each slot is an
/// independent commutative sum, so concurrent adds cannot corrupt it
/// (the `ConcurrentStats` argument, without the float shifting).
pub struct SharedProfile {
    counts: [AtomicU64; ProfKey::COUNT],
    nanos: [AtomicU64; ProfKey::COUNT],
}

impl SharedProfile {
    /// A zeroed accumulator.
    pub const fn new() -> Self {
        SharedProfile {
            counts: [const { AtomicU64::new(0) }; ProfKey::COUNT],
            nanos: [const { AtomicU64::new(0) }; ProfKey::COUNT],
        }
    }

    /// Attribute `count` events and `nanos` wall nanoseconds to `key`.
    #[inline]
    pub fn add(&self, key: ProfKey, count: u64, nanos: u64) {
        let i = key.index();
        self.counts[i].fetch_add(count, Ordering::Relaxed);
        self.nanos[i].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Fold a finished shard in (commutative, any thread).
    pub fn add_profile(&self, shard: &Profile) {
        for &key in &PROF_KEYS {
            let (c, n) = (shard.count(key), shard.nanos(key));
            if c > 0 || n > 0 {
                self.add(key, c, n);
            }
        }
    }

    /// A plain-data copy of the current totals.
    pub fn snapshot(&self) -> Profile {
        let mut p = Profile::new();
        for i in 0..ProfKey::COUNT {
            p.counts[i] = self.counts[i].load(Ordering::Relaxed);
            p.nanos[i] = self.nanos[i].load(Ordering::Relaxed);
        }
        p
    }

    /// Zero every slot (test isolation).
    pub fn reset(&self) {
        for i in 0..ProfKey::COUNT {
            self.counts[i].store(0, Ordering::Relaxed);
            self.nanos[i].store(0, Ordering::Relaxed);
        }
    }
}

impl Default for SharedProfile {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: SharedProfile = SharedProfile::new();

/// The process-wide profile: every finished run's shard folds in here,
/// plus the cross-thread sites (collector drainer, deployment).
pub fn global() -> &'static SharedProfile {
    &GLOBAL
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.
// ---------------------------------------------------------------------------

/// One recorded span, relative to the trace epoch.
#[derive(Debug, Clone, Copy)]
struct TraceSpan {
    key: ProfKey,
    start_ns: u64,
    dur_ns: u64,
}

struct TraceBuf {
    epoch: Instant,
    spans: Vec<TraceSpan>,
    capacity: usize,
    dropped: u64,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static TRACE: Mutex<Option<TraceBuf>> = Mutex::new(None);

/// Start recording [`Span`]s (capacity-bounded; spans beyond `capacity`
/// are counted as dropped).  Tracing rides on the profiler, so the
/// profiler must also be enabled for spans to exist at all.
pub fn start_trace(capacity: usize) {
    let mut slot = TRACE.lock().expect("trace buffer poisoned");
    *slot = Some(TraceBuf {
        epoch: Instant::now(),
        spans: Vec::with_capacity(capacity.min(1 << 20)),
        capacity,
        dropped: 0,
    });
    TRACING.store(true, Ordering::Relaxed);
}

/// Stop recording and render the buffer as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`, complete `ph:"X"` events, microsecond
/// timestamps).  Returns `(json, recorded, dropped)`; `None` when no trace
/// was active.
pub fn stop_trace_json() -> Option<(String, usize, u64)> {
    TRACING.store(false, Ordering::Relaxed);
    let buf = TRACE.lock().expect("trace buffer poisoned").take()?;
    let mut out = String::with_capacity(buf.spans.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in buf.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1}}",
            s.key.label(),
            if s.key.is_subsystem() { "subsystem" } else { "event" },
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
        ));
    }
    out.push_str("]}\n");
    Some((out, buf.spans.len(), buf.dropped))
}

/// Record one finished span into the trace buffer, if tracing is active.
#[inline]
fn trace_record(key: ProfKey, start: Instant, dur_ns: u64) {
    if !TRACING.load(Ordering::Relaxed) {
        return;
    }
    let mut slot = TRACE.lock().expect("trace buffer poisoned");
    if let Some(buf) = slot.as_mut() {
        if buf.spans.len() < buf.capacity {
            let start_ns = start
                .checked_duration_since(buf.epoch)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            buf.spans.push(TraceSpan {
                key,
                start_ns,
                dur_ns,
            });
        } else {
            buf.dropped += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Carcara-style breakdown statistics.
// ---------------------------------------------------------------------------

/// Per-key share statistics across labelled observations: mean ± σ plus
/// min/max with the label (scenario) that produced each extreme.
#[derive(Debug, Clone)]
pub struct KeyStats {
    share: RunningStats,
    min_label: Option<String>,
    max_label: Option<String>,
    total_nanos: u64,
    total_count: u64,
}

impl Default for KeyStats {
    fn default() -> Self {
        KeyStats {
            // NOT RunningStats::default(): the derived Default zeroes the
            // min/max accumulators instead of seeding them with ±infinity.
            share: RunningStats::new(),
            min_label: None,
            max_label: None,
            total_nanos: 0,
            total_count: 0,
        }
    }
}

impl KeyStats {
    /// Mean share across observations.
    pub fn mean_share(&self) -> f64 {
        self.share.mean()
    }

    /// Standard deviation of the share across observations.
    pub fn stddev_share(&self) -> f64 {
        self.share.std_dev()
    }

    /// Smallest observed share (0 when nothing was observed).
    pub fn min_share(&self) -> f64 {
        self.share.min().unwrap_or(0.0)
    }

    /// Largest observed share (0 when nothing was observed).
    pub fn max_share(&self) -> f64 {
        self.share.max().unwrap_or(0.0)
    }

    /// Label of the observation with the smallest share.
    pub fn min_label(&self) -> Option<&str> {
        self.min_label.as_deref()
    }

    /// Label of the observation with the largest share.
    pub fn max_label(&self) -> Option<&str> {
        self.max_label.as_deref()
    }

    /// Wall nanoseconds summed across observations.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// Events summed across observations.
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    fn observe(&mut self, label: &str, share: f64, nanos: u64, count: u64) {
        let better_min = self.share.min().is_none_or(|m| share < m);
        let better_max = self.share.max().is_none_or(|m| share > m);
        self.share.push(share);
        if better_min {
            self.min_label = Some(label.to_string());
        }
        if better_max {
            self.max_label = Some(label.to_string());
        }
        self.total_nanos += nanos;
        self.total_count += count;
    }
}

impl Commute for KeyStats {
    fn commute(&mut self, other: Self) {
        // Label of the winning extreme follows the extreme itself; exact
        // ties break toward the lexicographically smaller label so the
        // merge stays order-independent.
        let (self_min, self_max) = (self.share.min(), self.share.max());
        let (other_min, other_max) = (other.share.min(), other.share.max());
        let take_other_min = other_min.is_some_and(|om| {
            self_min.is_none_or(|sm| om < sm || (om == sm && other.min_label < self.min_label))
        });
        let take_other_max = other_max.is_some_and(|om| {
            self_max.is_none_or(|sm| om > sm || (om == sm && other.max_label > self.max_label))
        });
        if take_other_min {
            self.min_label = other.min_label.clone();
        }
        if take_other_max {
            self.max_label = other.max_label.clone();
        }
        self.share.merge(&other.share);
        self.total_nanos += other.total_nanos;
        self.total_count += other.total_count;
    }
}

/// Share statistics per [`ProfKey`] across labelled profile observations
/// (one per scenario), carcara-style.
#[derive(Debug, Clone)]
pub struct Breakdown {
    keys: Vec<KeyStats>,
    observations: u64,
}

impl Default for Breakdown {
    fn default() -> Self {
        Self::new()
    }
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Breakdown {
            keys: (0..ProfKey::COUNT).map(|_| KeyStats::default()).collect(),
            observations: 0,
        }
    }

    /// Fold one labelled profile in (one observation per key).
    pub fn observe(&mut self, label: &str, profile: &Profile) {
        if profile.is_empty() {
            return;
        }
        for &key in &PROF_KEYS {
            self.keys[key.index()].observe(
                label,
                profile.share(key),
                profile.nanos(key),
                profile.count(key),
            );
        }
        self.observations += 1;
    }

    /// Number of observations folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.observations == 0
    }

    /// The statistics of one key.
    pub fn key_stats(&self, key: ProfKey) -> &KeyStats {
        &self.keys[key.index()]
    }

    /// Render the two-group breakdown (subsystems, then event kinds) as an
    /// aligned text table: mean ± σ share, min/max with offending label,
    /// total milliseconds and event counts.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!(
            "== time breakdown: {title} ({} observation{}) ==\n",
            self.observations,
            if self.observations == 1 { "" } else { "s" }
        );
        for (header, subsystem) in [("subsystems", true), ("event kinds", false)] {
            out.push_str(&format!("-- {header} (share of attributed wall time) --\n"));
            out.push_str(&format!(
                "{:<22} {:>7} {:>7} {:>7} {:<26} {:>7} {:<26} {:>12} {:>12}\n",
                "key",
                "mean%",
                "sd%",
                "min%",
                "@scenario",
                "max%",
                "@scenario",
                "total_ms",
                "events"
            ));
            for &key in PROF_KEYS.iter().filter(|k| k.is_subsystem() == subsystem) {
                let s = self.key_stats(key);
                if s.total_count() == 0 && s.total_nanos() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<22} {:>7.2} {:>7.2} {:>7.2} {:<26} {:>7.2} {:<26} {:>12.3} {:>12}\n",
                    key.label(),
                    100.0 * s.mean_share(),
                    100.0 * s.stddev_share(),
                    100.0 * s.min_share(),
                    s.min_label().unwrap_or("-"),
                    100.0 * s.max_share(),
                    s.max_label().unwrap_or("-"),
                    s.total_nanos() as f64 / 1e6,
                    s.total_count(),
                ));
            }
        }
        out
    }
}

impl Commute for Breakdown {
    fn commute(&mut self, other: Self) {
        for (slot, item) in self.keys.iter_mut().zip(other.keys) {
            slot.commute(item);
        }
        self.observations += other.observations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that flip the global gate serialize here so parallel test
    /// threads cannot observe each other's profiler state.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn keys_cover_every_slot_in_order() {
        assert_eq!(PROF_KEYS.len(), ProfKey::COUNT);
        for (i, key) in PROF_KEYS.iter().enumerate() {
            assert_eq!(key.index(), i);
            assert_eq!(ProfKey::from_label(key.label()), Some(*key));
        }
        assert_eq!(PROF_KEYS.iter().filter(|k| k.is_subsystem()).count(), 8);
        assert_eq!(ProfKey::from_label("nonsense"), None);
    }

    #[test]
    fn profile_accumulates_and_merges_exactly() {
        let mut a = Profile::new();
        a.add(ProfKey::Mac, 10, 1_000);
        a.add(ProfKey::EvSenseChannel, 10, 3_000);
        let mut b = Profile::new();
        b.add(ProfKey::Mac, 5, 500);
        b.add(ProfKey::EvRoundStart, 1, 7_000);
        let mut merged = a.clone();
        merged.commute(b.clone());
        let mut flipped = b.clone();
        flipped.commute(a.clone());
        assert_eq!(merged, flipped);
        assert_eq!(merged.count(ProfKey::Mac), 15);
        assert_eq!(merged.nanos(ProfKey::Mac), 1_500);
        assert_eq!(merged.total_event_nanos(), 10_000);
        assert_eq!(merged.attributed_nanos(), 10_000);
        assert!((merged.share(ProfKey::EvRoundStart) - 0.7).abs() < 1e-12);
        let delta = merged.delta_since(&a);
        assert_eq!(delta, b);
    }

    #[test]
    fn empty_profile_has_zero_shares() {
        let p = Profile::new();
        assert!(p.is_empty());
        assert_eq!(p.share(ProfKey::Mac), 0.0);
        assert_eq!(p.attributed_nanos(), 0);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = GATE.lock().unwrap();
        set_enabled(false);
        let mut p = Profile::new();
        let span = Span::start();
        span.stop(&mut p, ProfKey::Mac, 3);
        assert!(p.is_empty());
        assert!(clock().is_none());
    }

    #[test]
    fn enabled_spans_record_counts_and_time() {
        let _gate = GATE.lock().unwrap();
        set_enabled(true);
        let mut p = Profile::new();
        let span = Span::start();
        std::hint::black_box(0u64);
        span.stop(&mut p, ProfKey::ClusterElection, 2);
        set_enabled(false);
        assert_eq!(p.count(ProfKey::ClusterElection), 2);
        // Zero-duration spans are possible on coarse clocks; the count is
        // the deterministic part.
        assert!(!p.is_empty());
    }

    #[test]
    fn shared_profile_snapshots_folded_shards() {
        let shared = SharedProfile::new();
        let mut shard = Profile::new();
        shard.add(ProfKey::Collector, 4, 400);
        shared.add_profile(&shard);
        shared.add_profile(&shard);
        shared.add(ProfKey::Deploy, 1, 50);
        let snap = shared.snapshot();
        assert_eq!(snap.count(ProfKey::Collector), 8);
        assert_eq!(snap.nanos(ProfKey::Collector), 800);
        assert_eq!(snap.count(ProfKey::Deploy), 1);
        shared.reset();
        assert!(shared.snapshot().is_empty());
    }

    #[test]
    fn breakdown_tracks_offending_labels() {
        let mut bd = Breakdown::new();
        let mut hot = Profile::new();
        hot.add(ProfKey::Mac, 1, 900);
        hot.add(ProfKey::EvSenseChannel, 1, 1_000);
        let mut cold = Profile::new();
        cold.add(ProfKey::Mac, 1, 100);
        cold.add(ProfKey::EvSenseChannel, 1, 1_000);
        bd.observe("hotspots", &hot);
        bd.observe("uniform", &cold);
        let s = bd.key_stats(ProfKey::Mac);
        assert_eq!(s.max_label(), Some("hotspots"));
        assert_eq!(s.min_label(), Some("uniform"));
        assert_eq!(s.total_count(), 2);
        assert!((s.max_share() - 0.9).abs() < 1e-12);
        let text = bd.render("test");
        assert!(text.contains("hotspots"));
        assert!(text.contains("mac"));
        assert!(text.contains("event kinds"));
    }

    #[test]
    fn breakdown_merge_is_order_independent() {
        let observe = |pairs: &[(&str, u64)]| {
            let mut bd = Breakdown::new();
            for &(label, mac_nanos) in pairs {
                let mut p = Profile::new();
                p.add(ProfKey::Mac, 1, mac_nanos);
                p.add(ProfKey::EvSenseChannel, 1, 1_000);
                bd.observe(label, &p);
            }
            bd
        };
        let mut left = observe(&[("a", 10), ("b", 500)]);
        let right = observe(&[("c", 900), ("d", 200)]);
        let mut flipped = observe(&[("c", 900), ("d", 200)]);
        flipped.commute(observe(&[("a", 10), ("b", 500)]));
        left.commute(right);
        let (l, f) = (
            left.key_stats(ProfKey::Mac),
            flipped.key_stats(ProfKey::Mac),
        );
        assert_eq!(left.observations(), flipped.observations());
        assert_eq!(l.min_label(), f.min_label());
        assert_eq!(l.max_label(), f.max_label());
        assert_eq!(l.total_nanos(), f.total_nanos());
        assert!((l.mean_share() - f.mean_share()).abs() < 1e-12);
    }

    #[test]
    fn trace_buffer_records_and_renders_chrome_json() {
        let _gate = GATE.lock().unwrap();
        set_enabled(true);
        start_trace(8);
        let mut p = Profile::new();
        let span = Span::start();
        span.stop(&mut p, ProfKey::ClusterFormation, 1);
        let (json, recorded, dropped) = stop_trace_json().expect("trace was active");
        set_enabled(false);
        assert_eq!(recorded, 1);
        assert_eq!(dropped, 0);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"cluster_formation\""));
        assert!(json.contains("\"ph\":\"X\""));
        // A second stop without a start is None.
        assert!(stop_trace_json().is_none());
    }

    #[test]
    fn trace_capacity_counts_drops() {
        let _gate = GATE.lock().unwrap();
        set_enabled(true);
        start_trace(1);
        let mut p = Profile::new();
        for _ in 0..3 {
            let span = Span::start();
            span.stop(&mut p, ProfKey::Mac, 1);
        }
        let (_, recorded, dropped) = stop_trace_json().expect("trace was active");
        set_enabled(false);
        assert_eq!(recorded, 1);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn selftest_spin_defaults_off() {
        // The env var is not set in the test environment, so the spin is a
        // no-op and the OnceLock caches zero.
        assert_eq!(selftest_spin_nanos(), 0);
        selftest_spin();
    }
}
