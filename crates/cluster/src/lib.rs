//! # caem-cluster
//!
//! LEACH clustering substrate (Low-Energy Adaptive Clustering Hierarchy,
//! Heinzelman et al.), the reference protocol the paper layers CAEM on.
//!
//! LEACH organises the network in rounds.  At the start of each round every
//! sensor independently decides whether to become a cluster head (CH) with a
//! probability given by the rotation threshold formula; non-head nodes join
//! the nearest elected head.  Rotating the head role spreads the expensive
//! receive/aggregate/forward work evenly, which is why (Fig. 9) all nodes die
//! within a short window of each other.
//!
//! * [`election`] — the threshold formula `T(n) = P / (1 − P·(r mod 1/P))`
//!   for nodes that have not served in the current epoch, the per-node
//!   election state, and the per-round draw.
//! * [`formation`] — nearest-head cluster formation and the degenerate-case
//!   handling (no head elected ⇒ force one so the round is not lost).
//! * [`rounds`] — round/epoch bookkeeping and round-duration scheduling.
//!
//! The paper sets `P = 0.05` (5 % of the 100 nodes are heads each round) and
//! assumes different clusters operate in different frequency bands, so
//! inter-cluster interference is not modelled.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod election;
pub mod formation;
pub mod rounds;

pub use election::{ElectionConfig, LeachElection, PAPER_CH_PROBABILITY};
pub use formation::{Cluster, ClusterFormation};
pub use rounds::{RoundClock, RoundConfig};
