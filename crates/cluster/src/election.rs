//! LEACH cluster-head election.
//!
//! At the start of round `r`, node `n` draws a uniform random number in
//! `[0, 1)` and becomes cluster head if the draw is below the threshold
//!
//! ```text
//! T(n) = P / (1 − P · (r mod 1/P))   if n ∈ G,
//!        0                            otherwise,
//! ```
//!
//! where `P` is the desired head fraction (paper: 0.05) and `G` is the set of
//! nodes that have **not** served as head in the last `1/P` rounds (the
//! current *epoch*).  Within an epoch every node therefore serves exactly
//! once in expectation, and the threshold rises toward 1 for the remaining
//! candidates as the epoch progresses.

use caem_simcore::rng::StreamRng;
use serde::{Deserialize, Serialize};

/// The paper's desired cluster-head percentage (5 %).
pub const PAPER_CH_PROBABILITY: f64 = 0.05;

/// Election parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectionConfig {
    /// Desired fraction of nodes serving as cluster head each round (0 < P ≤ 1).
    pub ch_probability: f64,
}

impl Default for ElectionConfig {
    fn default() -> Self {
        ElectionConfig {
            ch_probability: PAPER_CH_PROBABILITY,
        }
    }
}

impl ElectionConfig {
    /// Number of rounds in one rotation epoch (`1/P`, rounded to nearest).
    pub fn epoch_length(&self) -> u64 {
        (1.0 / self.ch_probability).round().max(1.0) as u64
    }
}

/// Per-network LEACH election state.
#[derive(Debug, Clone)]
pub struct LeachElection {
    config: ElectionConfig,
    /// `true` while the node is still eligible in the current epoch (∈ G).
    eligible: Vec<bool>,
    /// How many times each node has served as head in total (for fairness
    /// assertions and metrics).
    head_counts: Vec<u64>,
    round: u64,
}

impl LeachElection {
    /// Create the election state for `node_count` nodes.
    pub fn new(node_count: usize, config: ElectionConfig) -> Self {
        assert!(
            config.ch_probability > 0.0 && config.ch_probability <= 1.0,
            "P must be in (0, 1]"
        );
        assert!(node_count > 0, "need at least one node");
        LeachElection {
            config,
            eligible: vec![true; node_count],
            head_counts: vec![0; node_count],
            round: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> ElectionConfig {
        self.config
    }

    /// The round that will be drawn next (0-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of nodes still eligible (|G|) in the current epoch.
    pub fn eligible_count(&self) -> usize {
        self.eligible.iter().filter(|&&e| e).count()
    }

    /// Total number of times each node has served as head.
    pub fn head_counts(&self) -> &[u64] {
        &self.head_counts
    }

    /// The election threshold `T(n)` for node `n` in the upcoming round.
    pub fn threshold(&self, node: usize) -> f64 {
        if !self.eligible[node] {
            return 0.0;
        }
        let p = self.config.ch_probability;
        let r_mod = (self.round % self.config.epoch_length()) as f64;
        let denom = 1.0 - p * r_mod;
        if denom <= 0.0 {
            1.0
        } else {
            (p / denom).min(1.0)
        }
    }

    /// Run the election for the next round.
    ///
    /// `alive` marks which nodes still have battery; dead nodes never become
    /// heads and do not block the epoch rotation.  Returns the indices of the
    /// elected cluster heads.  If no live node elected itself (possible early
    /// in an epoch with few candidates), one live eligible node is forced so
    /// the round — and hence the network — is not lost; this mirrors the
    /// standard LEACH implementation behaviour.
    pub fn elect_round(&mut self, alive: &[bool], rng: &mut StreamRng) -> Vec<usize> {
        assert_eq!(alive.len(), self.eligible.len(), "alive mask size mismatch");
        // Epoch rollover: when nobody is left in G, everybody re-enters.
        if self.eligible.iter().zip(alive).all(|(&e, &a)| !e || !a) {
            for e in &mut self.eligible {
                *e = true;
            }
        }
        let mut heads = Vec::new();
        for (node, &node_alive) in alive.iter().enumerate().take(self.eligible.len()) {
            if !node_alive {
                continue;
            }
            let t = self.threshold(node);
            if rng.next_f64() < t {
                heads.push(node);
            }
        }
        if heads.is_empty() {
            // Force one head among live eligible nodes (or any live node).
            let candidate = (0..alive.len())
                .find(|&n| alive[n] && self.eligible[n])
                .or_else(|| (0..alive.len()).find(|&n| alive[n]));
            if let Some(n) = candidate {
                heads.push(n);
            }
        }
        for &h in &heads {
            self.eligible[h] = false;
            self.head_counts[h] += 1;
        }
        self.round += 1;
        heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_length_from_probability() {
        assert_eq!(ElectionConfig::default().epoch_length(), 20);
        assert_eq!(
            ElectionConfig {
                ch_probability: 0.1
            }
            .epoch_length(),
            10
        );
        assert_eq!(
            ElectionConfig {
                ch_probability: 1.0
            }
            .epoch_length(),
            1
        );
    }

    #[test]
    fn threshold_formula_matches_paper() {
        let e = LeachElection::new(10, ElectionConfig::default());
        // Round 0: T = P.
        assert!((e.threshold(0) - 0.05).abs() < 1e-12);
        let mut e = LeachElection::new(10, ElectionConfig::default());
        e.round = 10; // mid-epoch
                      // T = 0.05 / (1 - 0.05*10) = 0.1
        assert!((e.threshold(0) - 0.1).abs() < 1e-12);
        e.round = 19; // last round of the epoch
                      // T = 0.05 / (1 - 0.95) = 1.0
        assert!((e.threshold(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ineligible_nodes_have_zero_threshold() {
        let mut e = LeachElection::new(
            4,
            ElectionConfig {
                ch_probability: 0.25,
            },
        );
        let alive = vec![true; 4];
        let mut rng = StreamRng::from_seed_u64(1);
        let heads = e.elect_round(&alive, &mut rng);
        for &h in &heads {
            assert_eq!(e.threshold(h), 0.0, "fresh head must leave G");
        }
    }

    #[test]
    fn every_round_has_at_least_one_head() {
        let mut e = LeachElection::new(100, ElectionConfig::default());
        let alive = vec![true; 100];
        let mut rng = StreamRng::from_seed_u64(2);
        for _ in 0..200 {
            let heads = e.elect_round(&alive, &mut rng);
            assert!(!heads.is_empty());
        }
    }

    #[test]
    fn average_head_count_is_close_to_p_times_n() {
        let mut e = LeachElection::new(100, ElectionConfig::default());
        let alive = vec![true; 100];
        let mut rng = StreamRng::from_seed_u64(3);
        let rounds = 400;
        let total: usize = (0..rounds)
            .map(|_| e.elect_round(&alive, &mut rng).len())
            .sum();
        let avg = total as f64 / rounds as f64;
        // Expect about 5 heads per round for P = 0.05, N = 100.
        assert!((avg - 5.0).abs() < 1.0, "average heads per round = {avg}");
    }

    #[test]
    fn rotation_is_fair_over_epochs() {
        let mut e = LeachElection::new(100, ElectionConfig::default());
        let alive = vec![true; 100];
        let mut rng = StreamRng::from_seed_u64(4);
        // 10 epochs worth of rounds.
        for _ in 0..200 {
            e.elect_round(&alive, &mut rng);
        }
        let counts = e.head_counts();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // Every node served at least a few times and nobody served wildly
        // more than anyone else (LEACH's fairness property).
        assert!(min >= 5, "min head count {min}");
        assert!(max <= 15, "max head count {max}");
    }

    #[test]
    fn within_one_epoch_no_node_serves_twice() {
        let mut e = LeachElection::new(
            40,
            ElectionConfig {
                ch_probability: 0.1,
            },
        );
        let alive = vec![true; 40];
        let mut rng = StreamRng::from_seed_u64(5);
        let mut served = std::collections::HashSet::new();
        // One epoch = 10 rounds; only ~4 heads/round * 10 = 40 nodes, so a
        // double service within the epoch would be a rotation bug.
        for _ in 0..10 {
            for h in e.elect_round(&alive, &mut rng) {
                assert!(served.insert(h), "node {h} served twice in one epoch");
            }
        }
    }

    #[test]
    fn dead_nodes_are_never_elected() {
        let mut e = LeachElection::new(
            10,
            ElectionConfig {
                ch_probability: 0.3,
            },
        );
        let mut alive = vec![true; 10];
        for slot in alive.iter_mut().take(5) {
            *slot = false;
        }
        let mut rng = StreamRng::from_seed_u64(6);
        for _ in 0..50 {
            for h in e.elect_round(&alive, &mut rng) {
                assert!(alive[h], "dead node {h} elected");
            }
        }
    }

    #[test]
    fn epoch_rolls_over_when_everyone_has_served() {
        let mut e = LeachElection::new(
            3,
            ElectionConfig {
                ch_probability: 0.5,
            },
        );
        let alive = vec![true; 3];
        let mut rng = StreamRng::from_seed_u64(7);
        for _ in 0..20 {
            e.elect_round(&alive, &mut rng);
        }
        // All three nodes must have served several times — the epoch reset
        // re-admits them after exhaustion.
        assert!(
            e.head_counts().iter().all(|&c| c >= 2),
            "{:?}",
            e.head_counts()
        );
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        LeachElection::new(
            10,
            ElectionConfig {
                ch_probability: 0.0,
            },
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_alive_mask_rejected() {
        let mut e = LeachElection::new(10, ElectionConfig::default());
        let mut rng = StreamRng::from_seed_u64(1);
        e.elect_round(&[true; 5], &mut rng);
    }
}
