//! LEACH round and epoch bookkeeping.
//!
//! LEACH time is divided into rounds; each round begins with cluster-head
//! election and cluster formation, followed by a (much longer) steady-state
//! data-transfer phase.  The paper does not state its round length; LEACH
//! implementations conventionally use ~20 s, which we adopt as the default
//! and expose for the ablation bench.

use caem_simcore::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Round timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundConfig {
    /// Duration of one round (election + steady state).
    pub round_duration: Duration,
    /// Portion of the round consumed by election/formation signalling before
    /// the steady-state data phase begins.
    pub setup_duration: Duration,
}

impl Default for RoundConfig {
    fn default() -> Self {
        RoundConfig {
            round_duration: Duration::from_secs(20),
            setup_duration: Duration::from_millis(100),
        }
    }
}

impl RoundConfig {
    /// Duration of the steady-state (data transfer) phase of each round.
    pub fn steady_state_duration(&self) -> Duration {
        self.round_duration - self.setup_duration
    }
}

/// Maps simulation time to LEACH round numbers and phase boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundClock {
    config: RoundConfig,
}

impl RoundClock {
    /// Create a round clock.
    pub fn new(config: RoundConfig) -> Self {
        assert!(
            config.round_duration > config.setup_duration,
            "round must be longer than its setup phase"
        );
        RoundClock { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> RoundConfig {
        self.config
    }

    /// The round number containing time `t` (round 0 starts at t = 0).
    pub fn round_at(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.config.round_duration.as_nanos()
    }

    /// Start time of round `r`.
    pub fn round_start(&self, round: u64) -> SimTime {
        SimTime::from_nanos(round * self.config.round_duration.as_nanos())
    }

    /// Start of the steady-state phase of round `r`.
    pub fn steady_state_start(&self, round: u64) -> SimTime {
        self.round_start(round) + self.config.setup_duration
    }

    /// Start time of the round after the one containing `t`.
    pub fn next_round_start(&self, t: SimTime) -> SimTime {
        self.round_start(self.round_at(t) + 1)
    }

    /// Is `t` inside the setup (election/formation) phase of its round?
    pub fn in_setup_phase(&self, t: SimTime) -> bool {
        let round_start = self.round_start(self.round_at(t));
        t - round_start < self.config.setup_duration
    }
}

impl Default for RoundClock {
    fn default() -> Self {
        RoundClock::new(RoundConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_numbering() {
        let clock = RoundClock::default();
        assert_eq!(clock.round_at(SimTime::ZERO), 0);
        assert_eq!(clock.round_at(SimTime::from_secs(19)), 0);
        assert_eq!(clock.round_at(SimTime::from_secs(20)), 1);
        assert_eq!(clock.round_at(SimTime::from_secs(605)), 30);
    }

    #[test]
    fn round_boundaries() {
        let clock = RoundClock::default();
        assert_eq!(clock.round_start(0), SimTime::ZERO);
        assert_eq!(clock.round_start(3), SimTime::from_secs(60));
        assert_eq!(
            clock.next_round_start(SimTime::from_secs(25)),
            SimTime::from_secs(40)
        );
        assert_eq!(
            clock.steady_state_start(1),
            SimTime::from_secs(20) + Duration::from_millis(100)
        );
    }

    #[test]
    fn setup_phase_detection() {
        let clock = RoundClock::default();
        assert!(clock.in_setup_phase(SimTime::from_millis(50)));
        assert!(!clock.in_setup_phase(SimTime::from_millis(150)));
        assert!(clock.in_setup_phase(SimTime::from_secs(20) + Duration::from_millis(10)));
        assert!(!clock.in_setup_phase(SimTime::from_secs(21)));
    }

    #[test]
    fn steady_state_duration() {
        let c = RoundConfig::default();
        assert_eq!(
            c.steady_state_duration(),
            Duration::from_secs(20) - Duration::from_millis(100)
        );
    }

    #[test]
    fn custom_round_length() {
        let clock = RoundClock::new(RoundConfig {
            round_duration: Duration::from_secs(5),
            setup_duration: Duration::from_millis(200),
        });
        assert_eq!(clock.round_at(SimTime::from_secs(12)), 2);
        assert_eq!(clock.round_start(2), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic]
    fn setup_longer_than_round_rejected() {
        RoundClock::new(RoundConfig {
            round_duration: Duration::from_millis(50),
            setup_duration: Duration::from_millis(100),
        });
    }
}
