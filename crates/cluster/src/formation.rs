//! Cluster formation: assigning every non-head node to a cluster head.
//!
//! After the election each ordinary node joins the head whose advertisement
//! it receives most strongly; with the paper's propagation model (identical
//! transmit power at every head) that is simply the *nearest* head.  The
//! paper assumes different clusters operate in different frequency bands, so
//! cluster membership fully determines who contends with whom.

use caem_channel::geometry::Position;
use serde::{Deserialize, Serialize};

/// One formed cluster: a head and its member nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Node index of the cluster head.
    pub head: usize,
    /// Node indices of the ordinary members (excludes the head itself).
    pub members: Vec<usize>,
}

impl Cluster {
    /// Total number of nodes in the cluster including the head.
    pub fn size(&self) -> usize {
        self.members.len() + 1
    }
}

/// The result of one round's cluster formation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterFormation {
    /// The formed clusters, one per elected head.
    pub clusters: Vec<Cluster>,
    /// For each node index, the cluster index it belongs to (heads map to
    /// their own cluster); `None` for dead nodes.
    pub assignment: Vec<Option<usize>>,
}

/// Above this `nodes × heads` work product the per-round assignment switches
/// from the quadratic scan to a uniform-grid index over the heads.  The
/// paper-scale scenarios (hundreds of nodes, a handful of heads) stay on the
/// scan; the grid only engages for the large deployments where the scan
/// would dominate the round.  Both paths compute the identical
/// `(distance², head index)` lexicographic minimum, so which one runs is
/// unobservable in the results.
const BRUTE_FORCE_MAX_WORK: usize = 4_000_000;

impl ClusterFormation {
    /// Form clusters by nearest-head assignment.
    ///
    /// * `positions` — every node's position (dead nodes included, ignored).
    /// * `heads` — indices of this round's cluster heads.
    /// * `alive` — liveness mask; dead nodes get no assignment.
    ///
    /// Equidistant heads tie-break to the lowest cluster index, on exact
    /// float equality of the squared distances.
    pub fn nearest_head(positions: &[Position], heads: &[usize], alive: &[bool]) -> Self {
        assert_eq!(
            positions.len(),
            alive.len(),
            "positions/alive length mismatch"
        );
        assert!(
            !heads.is_empty(),
            "cluster formation needs at least one head"
        );
        for &h in heads {
            assert!(h < positions.len(), "head index out of range");
            debug_assert!(alive[h], "dead node cannot be a head");
        }
        let mut clusters: Vec<Cluster> = heads
            .iter()
            .map(|&h| Cluster {
                head: h,
                members: Vec::new(),
            })
            .collect();
        let mut assignment = vec![None; positions.len()];
        for (cluster_idx, &h) in heads.iter().enumerate() {
            assignment[h] = Some(cluster_idx);
        }
        let grid = if positions.len().saturating_mul(heads.len()) > BRUTE_FORCE_MAX_WORK {
            HeadGrid::build(positions, heads)
        } else {
            None
        };
        for node in 0..positions.len() {
            // Heads were pre-assigned above, so `assignment` doubles as the
            // O(1) head-membership test.
            if !alive[node] || assignment[node].is_some() {
                continue;
            }
            let nearest = match &grid {
                Some(grid) => grid.nearest(positions[node], positions, heads),
                None => nearest_head_scan(positions[node], positions, heads),
            };
            clusters[nearest].members.push(node);
            assignment[node] = Some(nearest);
        }
        ClusterFormation {
            clusters,
            assignment,
        }
    }

    /// The cluster index of `node`, if it is assigned.
    pub fn cluster_of(&self, node: usize) -> Option<usize> {
        self.assignment.get(node).copied().flatten()
    }

    /// The head node serving `node` (a head serves itself).
    pub fn head_of(&self, node: usize) -> Option<usize> {
        self.cluster_of(node).map(|c| self.clusters[c].head)
    }

    /// Is `node` a cluster head in this formation?
    ///
    /// O(1): a node is head exactly when the cluster it is assigned to names
    /// it as head (heads are always assigned to their own cluster during
    /// formation, so no separate flag column is needed).
    pub fn is_head(&self, node: usize) -> bool {
        self.cluster_of(node)
            .map(|c| self.clusters[c].head == node)
            .unwrap_or(false)
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Mean distance between members and their heads (a geometry sanity
    /// metric used by tests and the ablation bench).
    pub fn mean_member_distance(&self, positions: &[Position]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0u32;
        for cluster in &self.clusters {
            let head_pos = positions[cluster.head];
            for &m in &cluster.members {
                sum += positions[m].distance_to(&head_pos);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// The quadratic path: linear scan keeping the first (= lowest cluster
/// index) of the exactly-equal minima, matching `Iterator::min_by`.
fn nearest_head_scan(node: Position, positions: &[Position], heads: &[usize]) -> usize {
    let mut best_d = f64::INFINITY;
    let mut best = 0usize;
    for (idx, &h) in heads.iter().enumerate() {
        let d = node.distance_sq_to(&positions[h]);
        if d < best_d {
            best_d = d;
            best = idx;
        }
    }
    best
}

/// A uniform grid over the round's head positions, queried by expanding
/// cell rings.
///
/// Cells hold head-*list* indices in CSR layout (one prefix-sum array, one
/// flat item array — no per-cell allocation).  A query walks rings of
/// increasing Chebyshev radius `r` around the node's cell and stops once the
/// ring's distance lower bound `(r-1)·cell` strictly exceeds the best
/// squared distance found; ties on the bound keep searching, so a farther
/// ring can still contribute an exactly-equidistant head with a lower
/// cluster index.  The running minimum is lexicographic on
/// `(distance², cluster index)`, which makes the result — including exact
/// float tie-breaks — identical to [`nearest_head_scan`].
struct HeadGrid {
    min_x: f64,
    min_y: f64,
    /// Cell side length (m).
    cell: f64,
    /// Grid width/height in cells.
    gw: usize,
    gh: usize,
    /// CSR: heads of cell `c` are `items[start[c]..start[c + 1]]`.
    start: Vec<u32>,
    items: Vec<u32>,
}

impl HeadGrid {
    /// Build a grid of roughly one head per cell.  Returns `None` when the
    /// head bounding box is degenerate (all heads coincident); callers fall
    /// back to the scan.
    fn build(positions: &[Position], heads: &[usize]) -> Option<Self> {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &h in heads {
            let p = positions[h];
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let width = max_x - min_x;
        let height = max_y - min_y;
        if width <= 0.0 && height <= 0.0 {
            // All heads coincident (or a single head): no spatial
            // discrimination to index.
            return None;
        }
        // Aim for ~√h cells per axis (≈ one head per cell on a square box;
        // a collinear box degenerates gracefully to a 1 × √h strip).
        let per_axis = (heads.len() as f64).sqrt().ceil().max(1.0);
        let cell = width.max(height) / per_axis;
        if !cell.is_finite() || cell <= 0.0 {
            return None;
        }
        let gw = ((width / cell).ceil() as usize)
            .max(1)
            .min(per_axis as usize + 1);
        let gh = ((height / cell).ceil() as usize)
            .max(1)
            .min(per_axis as usize + 1);
        // Counting sort into CSR: count per cell, prefix-sum, then fill.
        let mut start = vec![0u32; gw * gh + 1];
        let cell_of = |p: Position| -> usize {
            let cx = (((p.x - min_x) / cell) as usize).min(gw - 1);
            let cy = (((p.y - min_y) / cell) as usize).min(gh - 1);
            cy * gw + cx
        };
        for &h in heads {
            start[cell_of(positions[h]) + 1] += 1;
        }
        for i in 1..start.len() {
            start[i] += start[i - 1];
        }
        let mut items = vec![0u32; heads.len()];
        let mut cursor = start.clone();
        for (idx, &h) in heads.iter().enumerate() {
            let c = cell_of(positions[h]);
            items[cursor[c] as usize] = idx as u32;
            cursor[c] += 1;
        }
        Some(HeadGrid {
            min_x,
            min_y,
            cell,
            gw,
            gh,
            start,
            items,
        })
    }

    /// Fold `f` over the heads bucketed in cell `(cx, cy)`.
    #[inline]
    fn scan_cell(
        &self,
        cx: usize,
        cy: usize,
        best: &mut (f64, usize),
        node: Position,
        positions: &[Position],
        heads: &[usize],
    ) {
        let c = cy * self.gw + cx;
        for &i in &self.items[self.start[c] as usize..self.start[c + 1] as usize] {
            let idx = i as usize;
            let d = node.distance_sq_to(&positions[heads[idx]]);
            if d < best.0 || (d == best.0 && idx < best.1) {
                *best = (d, idx);
            }
        }
    }

    /// The `(distance², cluster index)`-lexicographic nearest head of `node`.
    fn nearest(&self, node: Position, positions: &[Position], heads: &[usize]) -> usize {
        // The node may lie outside the head bounding box; clamping its cell
        // only loosens the ring lower bound, never breaks it.
        let cx = ((((node.x - self.min_x) / self.cell).max(0.0)) as usize).min(self.gw - 1);
        let cy = ((((node.y - self.min_y) / self.cell).max(0.0)) as usize).min(self.gh - 1);
        // Rings beyond this radius contain no cells at all.
        let max_r = cx.max(self.gw - 1 - cx).max(cy.max(self.gh - 1 - cy));
        let mut best = (f64::INFINITY, usize::MAX);
        for r in 0..=max_r {
            if best.1 != usize::MAX {
                // Every point of a ring-`r` cell is at least `(r-1)·cell`
                // away.  Strict comparison: an exactly-tying farther head
                // must still be visited for the index tie-break.
                let lower = (r as f64 - 1.0).max(0.0) * self.cell;
                if lower * lower > best.0 {
                    break;
                }
            }
            if r == 0 {
                self.scan_cell(cx, cy, &mut best, node, positions, heads);
                continue;
            }
            let x_lo = cx.saturating_sub(r);
            let x_hi = (cx + r).min(self.gw - 1);
            // Top and bottom rows of the ring (where they exist)...
            if cy >= r {
                for x in x_lo..=x_hi {
                    self.scan_cell(x, cy - r, &mut best, node, positions, heads);
                }
            }
            if cy + r < self.gh {
                for x in x_lo..=x_hi {
                    self.scan_cell(x, cy + r, &mut best, node, positions, heads);
                }
            }
            // ...then the side columns, excluding the corners the rows
            // already visited.
            let y_lo = cy.saturating_sub(r - 1);
            let y_hi = (cy + r - 1).min(self.gh - 1);
            if y_lo <= y_hi {
                if cx >= r {
                    for y in y_lo..=y_hi {
                        self.scan_cell(cx - r, y, &mut best, node, positions, heads);
                    }
                }
                if cx + r < self.gw {
                    for y in y_lo..=y_hi {
                        self.scan_cell(cx + r, y, &mut best, node, positions, heads);
                    }
                }
            }
        }
        debug_assert!(best.1 != usize::MAX, "grid query found no head");
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_channel::geometry::Field;
    use caem_simcore::rng::StreamRng;

    fn square_positions() -> Vec<Position> {
        vec![
            Position::new(10.0, 10.0), // 0
            Position::new(90.0, 10.0), // 1
            Position::new(10.0, 90.0), // 2
            Position::new(90.0, 90.0), // 3
            Position::new(12.0, 12.0), // 4 — near node 0
            Position::new(88.0, 88.0), // 5 — near node 3
        ]
    }

    #[test]
    fn members_join_nearest_head() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        let f = ClusterFormation::nearest_head(&positions, &[0, 3], &alive);
        assert_eq!(f.cluster_count(), 2);
        assert_eq!(f.head_of(4), Some(0));
        assert_eq!(f.head_of(5), Some(3));
        assert!(f.is_head(0));
        assert!(f.is_head(3));
        assert!(!f.is_head(4));
        // Heads belong to their own clusters.
        assert_eq!(f.head_of(0), Some(0));
        assert_eq!(f.head_of(3), Some(3));
        // Everybody alive is assigned somewhere.
        assert!(f.assignment.iter().all(|a| a.is_some()));
    }

    #[test]
    fn dead_nodes_are_unassigned() {
        let positions = square_positions();
        let mut alive = vec![true; positions.len()];
        alive[4] = false;
        let f = ClusterFormation::nearest_head(&positions, &[0, 3], &alive);
        assert_eq!(f.cluster_of(4), None);
        assert_eq!(f.head_of(4), None);
        let total_members: usize = f.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total_members, positions.len() - 2 - 1);
    }

    #[test]
    fn single_head_takes_everyone() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        let f = ClusterFormation::nearest_head(&positions, &[2], &alive);
        assert_eq!(f.cluster_count(), 1);
        assert_eq!(f.clusters[0].size(), positions.len());
        assert!(positions
            .iter()
            .enumerate()
            .all(|(i, _)| f.head_of(i) == Some(2)));
    }

    #[test]
    fn cluster_sizes_sum_to_live_nodes() {
        let field = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(11);
        let positions = field.random_deployment(100, &mut rng);
        let alive = vec![true; 100];
        let heads = vec![3, 17, 42, 68, 91];
        let f = ClusterFormation::nearest_head(&positions, &heads, &alive);
        let total: usize = f.clusters.iter().map(|c| c.size()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn nearest_assignment_minimises_distance() {
        let field = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(12);
        let positions = field.random_deployment(60, &mut rng);
        let alive = vec![true; 60];
        let heads = vec![0, 1, 2];
        let f = ClusterFormation::nearest_head(&positions, &heads, &alive);
        for node in 3..60 {
            let chosen = f.head_of(node).unwrap();
            let chosen_d = positions[node].distance_to(&positions[chosen]);
            for &h in &heads {
                assert!(
                    chosen_d <= positions[node].distance_to(&positions[h]) + 1e-9,
                    "node {node} not assigned to nearest head"
                );
            }
        }
        assert!(f.mean_member_distance(&positions) > 0.0);
    }

    #[test]
    fn more_heads_reduce_mean_member_distance() {
        let field = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(13);
        let positions = field.random_deployment(100, &mut rng);
        let alive = vec![true; 100];
        let few = ClusterFormation::nearest_head(&positions, &[0, 50], &alive);
        let many = ClusterFormation::nearest_head(&positions, &[0, 10, 30, 50, 70, 90], &alive);
        assert!(many.mean_member_distance(&positions) < few.mean_member_distance(&positions));
    }

    #[test]
    fn grid_index_matches_the_scan_exactly() {
        // Dense random instance: every node's grid answer must equal the
        // quadratic scan's, index-for-index.
        let field = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(21);
        let positions = field.random_deployment(3_000, &mut rng);
        let heads: Vec<usize> = (0..150).map(|i| i * 20).collect();
        let grid = HeadGrid::build(&positions, &heads).expect("non-degenerate box");
        for node in 0..positions.len() {
            let scan = nearest_head_scan(positions[node], &positions, &heads);
            let fast = grid.nearest(positions[node], &positions, &heads);
            assert_eq!(fast, scan, "node {node} diverged");
        }
    }

    #[test]
    fn grid_index_tie_breaks_to_the_lowest_cluster_index() {
        // Node 4 at (50, 50) is *exactly* equidistant (d² = 100 in both
        // cases, bit-equal) from heads 0 and 1; both paths must pick the
        // lower cluster index.  Extra heads pad the box so the grid builds.
        let positions = vec![
            Position::new(40.0, 50.0),   // head, cluster 0
            Position::new(60.0, 50.0),   // head, cluster 1 — exact tie
            Position::new(0.0, 0.0),     // head, far corner
            Position::new(100.0, 100.0), // head, far corner
            Position::new(50.0, 50.0),   // the tied node
        ];
        let heads = vec![0, 1, 2, 3];
        let a = positions[4].distance_sq_to(&positions[0]);
        let b = positions[4].distance_sq_to(&positions[1]);
        assert_eq!(a.to_bits(), b.to_bits(), "tie must be exact");
        let grid = HeadGrid::build(&positions, &heads).expect("grid builds");
        assert_eq!(nearest_head_scan(positions[4], &positions, &heads), 0);
        assert_eq!(grid.nearest(positions[4], &positions, &heads), 0);
    }

    #[test]
    fn grid_handles_nodes_outside_the_head_bounding_box() {
        // Heads cluster in the middle; nodes at the field corners query
        // from clamped cells and must still find the true nearest head.
        let positions = vec![
            Position::new(45.0, 45.0),
            Position::new(55.0, 45.0),
            Position::new(45.0, 55.0),
            Position::new(55.0, 55.0),
            Position::new(0.0, 0.0),
            Position::new(100.0, 0.0),
            Position::new(0.0, 100.0),
            Position::new(100.0, 100.0),
        ];
        let heads = vec![0, 1, 2, 3];
        let grid = HeadGrid::build(&positions, &heads).expect("grid builds");
        for node in 4..8 {
            assert_eq!(
                grid.nearest(positions[node], &positions, &heads),
                nearest_head_scan(positions[node], &positions, &heads),
                "corner node {node}"
            );
        }
    }

    #[test]
    fn coincident_heads_degenerate_to_no_grid() {
        let positions = vec![Position::new(5.0, 5.0); 4];
        assert!(HeadGrid::build(&positions, &[0, 1, 2]).is_none());
    }

    #[test]
    #[should_panic]
    fn empty_head_list_rejected() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        ClusterFormation::nearest_head(&positions, &[], &alive);
    }

    #[test]
    #[should_panic]
    fn out_of_range_head_rejected() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        ClusterFormation::nearest_head(&positions, &[99], &alive);
    }
}
