//! Cluster formation: assigning every non-head node to a cluster head.
//!
//! After the election each ordinary node joins the head whose advertisement
//! it receives most strongly; with the paper's propagation model (identical
//! transmit power at every head) that is simply the *nearest* head.  The
//! paper assumes different clusters operate in different frequency bands, so
//! cluster membership fully determines who contends with whom.

use caem_channel::geometry::Position;
use serde::{Deserialize, Serialize};

/// One formed cluster: a head and its member nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Node index of the cluster head.
    pub head: usize,
    /// Node indices of the ordinary members (excludes the head itself).
    pub members: Vec<usize>,
}

impl Cluster {
    /// Total number of nodes in the cluster including the head.
    pub fn size(&self) -> usize {
        self.members.len() + 1
    }
}

/// The result of one round's cluster formation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterFormation {
    /// The formed clusters, one per elected head.
    pub clusters: Vec<Cluster>,
    /// For each node index, the cluster index it belongs to (heads map to
    /// their own cluster); `None` for dead nodes.
    pub assignment: Vec<Option<usize>>,
}

impl ClusterFormation {
    /// Form clusters by nearest-head assignment.
    ///
    /// * `positions` — every node's position (dead nodes included, ignored).
    /// * `heads` — indices of this round's cluster heads.
    /// * `alive` — liveness mask; dead nodes get no assignment.
    pub fn nearest_head(positions: &[Position], heads: &[usize], alive: &[bool]) -> Self {
        assert_eq!(
            positions.len(),
            alive.len(),
            "positions/alive length mismatch"
        );
        assert!(
            !heads.is_empty(),
            "cluster formation needs at least one head"
        );
        for &h in heads {
            assert!(h < positions.len(), "head index out of range");
            debug_assert!(alive[h], "dead node cannot be a head");
        }
        let mut clusters: Vec<Cluster> = heads
            .iter()
            .map(|&h| Cluster {
                head: h,
                members: Vec::new(),
            })
            .collect();
        let mut assignment = vec![None; positions.len()];
        for (cluster_idx, &h) in heads.iter().enumerate() {
            assignment[h] = Some(cluster_idx);
        }
        for node in 0..positions.len() {
            if !alive[node] || heads.contains(&node) {
                continue;
            }
            let nearest = heads
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    positions[node]
                        .distance_sq_to(&positions[a])
                        .partial_cmp(&positions[node].distance_sq_to(&positions[b]))
                        .expect("distances are finite")
                })
                .map(|(idx, _)| idx)
                .expect("at least one head");
            clusters[nearest].members.push(node);
            assignment[node] = Some(nearest);
        }
        ClusterFormation {
            clusters,
            assignment,
        }
    }

    /// The cluster index of `node`, if it is assigned.
    pub fn cluster_of(&self, node: usize) -> Option<usize> {
        self.assignment.get(node).copied().flatten()
    }

    /// The head node serving `node` (a head serves itself).
    pub fn head_of(&self, node: usize) -> Option<usize> {
        self.cluster_of(node).map(|c| self.clusters[c].head)
    }

    /// Is `node` a cluster head in this formation?
    pub fn is_head(&self, node: usize) -> bool {
        self.clusters.iter().any(|c| c.head == node)
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Mean distance between members and their heads (a geometry sanity
    /// metric used by tests and the ablation bench).
    pub fn mean_member_distance(&self, positions: &[Position]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0u32;
        for cluster in &self.clusters {
            let head_pos = positions[cluster.head];
            for &m in &cluster.members {
                sum += positions[m].distance_to(&head_pos);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_channel::geometry::Field;
    use caem_simcore::rng::StreamRng;

    fn square_positions() -> Vec<Position> {
        vec![
            Position::new(10.0, 10.0), // 0
            Position::new(90.0, 10.0), // 1
            Position::new(10.0, 90.0), // 2
            Position::new(90.0, 90.0), // 3
            Position::new(12.0, 12.0), // 4 — near node 0
            Position::new(88.0, 88.0), // 5 — near node 3
        ]
    }

    #[test]
    fn members_join_nearest_head() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        let f = ClusterFormation::nearest_head(&positions, &[0, 3], &alive);
        assert_eq!(f.cluster_count(), 2);
        assert_eq!(f.head_of(4), Some(0));
        assert_eq!(f.head_of(5), Some(3));
        assert!(f.is_head(0));
        assert!(f.is_head(3));
        assert!(!f.is_head(4));
        // Heads belong to their own clusters.
        assert_eq!(f.head_of(0), Some(0));
        assert_eq!(f.head_of(3), Some(3));
        // Everybody alive is assigned somewhere.
        assert!(f.assignment.iter().all(|a| a.is_some()));
    }

    #[test]
    fn dead_nodes_are_unassigned() {
        let positions = square_positions();
        let mut alive = vec![true; positions.len()];
        alive[4] = false;
        let f = ClusterFormation::nearest_head(&positions, &[0, 3], &alive);
        assert_eq!(f.cluster_of(4), None);
        assert_eq!(f.head_of(4), None);
        let total_members: usize = f.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total_members, positions.len() - 2 - 1);
    }

    #[test]
    fn single_head_takes_everyone() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        let f = ClusterFormation::nearest_head(&positions, &[2], &alive);
        assert_eq!(f.cluster_count(), 1);
        assert_eq!(f.clusters[0].size(), positions.len());
        assert!(positions
            .iter()
            .enumerate()
            .all(|(i, _)| f.head_of(i) == Some(2)));
    }

    #[test]
    fn cluster_sizes_sum_to_live_nodes() {
        let field = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(11);
        let positions = field.random_deployment(100, &mut rng);
        let alive = vec![true; 100];
        let heads = vec![3, 17, 42, 68, 91];
        let f = ClusterFormation::nearest_head(&positions, &heads, &alive);
        let total: usize = f.clusters.iter().map(|c| c.size()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn nearest_assignment_minimises_distance() {
        let field = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(12);
        let positions = field.random_deployment(60, &mut rng);
        let alive = vec![true; 60];
        let heads = vec![0, 1, 2];
        let f = ClusterFormation::nearest_head(&positions, &heads, &alive);
        for node in 3..60 {
            let chosen = f.head_of(node).unwrap();
            let chosen_d = positions[node].distance_to(&positions[chosen]);
            for &h in &heads {
                assert!(
                    chosen_d <= positions[node].distance_to(&positions[h]) + 1e-9,
                    "node {node} not assigned to nearest head"
                );
            }
        }
        assert!(f.mean_member_distance(&positions) > 0.0);
    }

    #[test]
    fn more_heads_reduce_mean_member_distance() {
        let field = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(13);
        let positions = field.random_deployment(100, &mut rng);
        let alive = vec![true; 100];
        let few = ClusterFormation::nearest_head(&positions, &[0, 50], &alive);
        let many = ClusterFormation::nearest_head(&positions, &[0, 10, 30, 50, 70, 90], &alive);
        assert!(many.mean_member_distance(&positions) < few.mean_member_distance(&positions));
    }

    #[test]
    #[should_panic]
    fn empty_head_list_rejected() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        ClusterFormation::nearest_head(&positions, &[], &alive);
    }

    #[test]
    #[should_panic]
    fn out_of_range_head_rejected() {
        let positions = square_positions();
        let alive = vec![true; positions.len()];
        ClusterFormation::nearest_head(&positions, &[99], &alive);
    }
}
