//! # caem-traffic
//!
//! Workload generation and packet buffering.
//!
//! In the paper's evaluation every sensor is a homogeneous Poisson source;
//! the "added traffic load" swept in Figs. 10–12 is the per-node packet
//! generation rate (packets/second).  Each node buffers generated packets in
//! a bounded queue (Table II: 50 packets) until the MAC gets to transmit
//! them; buffer overflow is one of the failure modes the CAEM Scheme 1
//! threshold adjustment exists to avoid.
//!
//! * [`packet`] — the packet record (origin, creation time, size).
//! * [`source`] — Poisson, CBR and two-state bursty (MMPP) sources behind a
//!   common [`source::TrafficSource`] trait.
//! * [`profile`] — deterministic time-of-day modulation: a diurnal intensity
//!   envelope applied to any source by time warping.
//! * [`buffer`] — bounded FIFO with drop accounting and the queue-length
//!   observations (`V(t_i)`) the CAEM predictor consumes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod packet;
pub mod profile;
pub mod source;

pub use buffer::{BufferStats, PacketBuffer, PAPER_BUFFER_CAPACITY};
pub use packet::{Packet, PacketId};
pub use profile::{DiurnalCycle, ModulatedSource};
pub use source::{BurstySource, CbrSource, PoissonSource, TrafficSource};
