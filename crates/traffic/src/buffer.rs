//! Bounded per-node packet buffer.
//!
//! Table II fixes the buffer size at 50 packets.  The buffer is the object
//! CAEM's threshold adjustment watches: its instantaneous length `V(t_i)`
//! sampled every K arrivals feeds the ΔV traffic predictor, and overflow
//! (drops) is the failure mode Scheme 1 exists to avoid.  For the fairness
//! experiment (Fig. 12) the paper instead makes the buffer "substantially
//! large" so the queue-length standard deviation is measured without drops —
//! [`PacketBuffer::unbounded`] covers that configuration.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::packet::Packet;

/// The paper's buffer capacity (Table II): 50 packets.
pub const PAPER_BUFFER_CAPACITY: usize = 50;

/// Drop/occupancy statistics for one buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Packets accepted into the buffer.
    pub enqueued: u64,
    /// Packets removed for transmission.
    pub dequeued: u64,
    /// Packets dropped because the buffer was full.
    pub dropped_overflow: u64,
    /// Largest queue length ever observed.
    pub high_watermark: usize,
}

/// A bounded FIFO of packets awaiting transmission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketBuffer {
    queue: VecDeque<Packet>,
    capacity: Option<usize>,
    stats: BufferStats,
}

impl PacketBuffer {
    /// A buffer with the paper's 50-packet capacity.
    pub fn paper_default() -> Self {
        Self::with_capacity(PAPER_BUFFER_CAPACITY)
    }

    /// A buffer holding at most `capacity` packets.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        // Backing storage grows on first use: a million-node deployment
        // holds a million buffers, most of them empty most of the time, so
        // eagerly reserving `capacity` slots each would dominate resident
        // memory for no behavioral difference.
        PacketBuffer {
            queue: VecDeque::new(),
            capacity: Some(capacity),
            stats: BufferStats::default(),
        }
    }

    /// An effectively unbounded buffer (Fig. 12 fairness measurements).
    pub fn unbounded() -> Self {
        PacketBuffer {
            queue: VecDeque::new(),
            capacity: None,
            stats: BufferStats::default(),
        }
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Is the buffer at capacity?
    pub fn is_full(&self) -> bool {
        match self.capacity {
            Some(c) => self.queue.len() >= c,
            None => false,
        }
    }

    /// Fraction of the capacity in use (0.0 for unbounded buffers).
    pub fn occupancy(&self) -> f64 {
        match self.capacity {
            Some(c) => self.queue.len() as f64 / c as f64,
            None => 0.0,
        }
    }

    /// Try to enqueue a packet.  Returns `false` (and counts a drop) when the
    /// buffer is full.
    pub fn enqueue(&mut self, packet: Packet) -> bool {
        if self.is_full() {
            self.stats.dropped_overflow += 1;
            return false;
        }
        self.queue.push_back(packet);
        self.stats.enqueued += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.queue.len());
        true
    }

    /// Peek at the head-of-line packet.
    pub fn peek(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Dequeue the head-of-line packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.queue.pop_front();
        if p.is_some() {
            self.stats.dequeued += 1;
        }
        p
    }

    /// Dequeue up to `count` packets (one MAC burst).
    pub fn dequeue_burst(&mut self, count: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(count.min(self.queue.len()));
        self.dequeue_burst_into(count, &mut out);
        out
    }

    /// Dequeue up to `count` packets, appending them to `out`.
    ///
    /// The buffer-reusing variant of [`PacketBuffer::dequeue_burst`]: the
    /// simulator keeps a pool of burst vectors so the per-burst allocation
    /// disappears from the event loop.
    pub fn dequeue_burst_into(&mut self, count: usize, out: &mut Vec<Packet>) {
        let take = count.min(self.queue.len());
        out.reserve(take);
        for _ in 0..take {
            out.push(self.queue.pop_front().expect("length checked"));
        }
        self.stats.dequeued += take as u64;
    }

    /// Push packets back at the *front* of the queue (a burst aborted by a
    /// collision returns its unsent packets without reordering).
    pub fn requeue_front(&mut self, mut packets: Vec<Packet>) {
        self.requeue_front_drain(&mut packets);
    }

    /// Like [`PacketBuffer::requeue_front`], but drains the given vector in
    /// place so the caller can reuse its allocation.
    pub fn requeue_front_drain(&mut self, packets: &mut Vec<Packet>) {
        for p in packets.drain(..).rev() {
            self.queue.push_front(p);
            // Requeued packets were already counted as enqueued; keep the
            // dequeued counter consistent by rolling it back.
            self.stats.dequeued = self.stats.dequeued.saturating_sub(1);
        }
        self.stats.high_watermark = self.stats.high_watermark.max(self.queue.len());
    }

    /// Buffer statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

impl Default for PacketBuffer {
    fn default() -> Self {
        PacketBuffer::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use caem_simcore::time::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet::new(PacketId(id), 0, SimTime::from_millis(id))
    }

    #[test]
    fn paper_default_capacity() {
        let b = PacketBuffer::paper_default();
        assert_eq!(b.capacity(), Some(50));
        assert!(b.is_empty());
        assert!(!b.is_full());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut b = PacketBuffer::with_capacity(10);
        for i in 0..5 {
            assert!(b.enqueue(pkt(i)));
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.peek().unwrap().id, PacketId(0));
        for i in 0..5 {
            assert_eq!(b.dequeue().unwrap().id, PacketId(i));
        }
        assert!(b.dequeue().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut b = PacketBuffer::with_capacity(3);
        for i in 0..5 {
            b.enqueue(pkt(i));
        }
        assert_eq!(b.len(), 3);
        assert!(b.is_full());
        let s = b.stats();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.dropped_overflow, 2);
        assert_eq!(s.high_watermark, 3);
        assert!((b.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unbounded_never_drops() {
        let mut b = PacketBuffer::unbounded();
        for i in 0..10_000 {
            assert!(b.enqueue(pkt(i)));
        }
        assert_eq!(b.len(), 10_000);
        assert!(!b.is_full());
        assert_eq!(b.capacity(), None);
        assert_eq!(b.occupancy(), 0.0);
        assert_eq!(b.stats().dropped_overflow, 0);
    }

    #[test]
    fn burst_dequeue_takes_at_most_count() {
        let mut b = PacketBuffer::with_capacity(20);
        for i in 0..6 {
            b.enqueue(pkt(i));
        }
        let burst = b.dequeue_burst(8);
        assert_eq!(burst.len(), 6);
        assert_eq!(b.len(), 0);
        let mut b2 = PacketBuffer::with_capacity(20);
        for i in 0..12 {
            b2.enqueue(pkt(i));
        }
        let burst = b2.dequeue_burst(8);
        assert_eq!(burst.len(), 8);
        assert_eq!(burst[0].id, PacketId(0));
        assert_eq!(b2.len(), 4);
        assert_eq!(b2.peek().unwrap().id, PacketId(8));
    }

    #[test]
    fn aborted_burst_requeues_in_order() {
        let mut b = PacketBuffer::with_capacity(20);
        for i in 0..6 {
            b.enqueue(pkt(i));
        }
        let mut burst = b.dequeue_burst(4);
        // Two of the four were sent before the collision; the rest go back.
        let unsent: Vec<Packet> = burst.split_off(2);
        b.requeue_front(unsent);
        assert_eq!(b.len(), 4);
        let order: Vec<u64> = (0..4).map(|_| b.dequeue().unwrap().id.0).collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
        // Net dequeued = 4 (burst) - 2 (requeued) + 4 (drained) = 6.
        assert_eq!(b.stats().dequeued, 6);
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut b = PacketBuffer::with_capacity(10);
        for i in 0..7 {
            b.enqueue(pkt(i));
        }
        b.dequeue_burst(5);
        for i in 10..13 {
            b.enqueue(pkt(i));
        }
        assert_eq!(b.stats().high_watermark, 7);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        PacketBuffer::with_capacity(0);
    }
}
