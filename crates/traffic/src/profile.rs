//! Time-varying traffic modulation (diurnal cycles).
//!
//! The paper's workload is stationary: every node generates at a constant
//! mean rate for the whole horizon.  Real sensor deployments see pronounced
//! time-of-day structure — wildlife is crepuscular, traffic counters follow
//! rush hours, agricultural telemetry follows the sun — so the scenario zoo
//! needs a deterministic way to make the *instantaneous* rate a function of
//! virtual time without touching a scenario's long-run load.
//!
//! [`DiurnalCycle`] is a sinusoidal intensity envelope `m(t)` with long-run
//! mean exactly 1; [`ModulatedSource`] applies it to any base
//! [`TrafficSource`] by **time warping**: the base process runs in its own
//! "operational time" `v` and every arrival is mapped through the inverse of
//! the cumulative intensity `Λ(t) = ∫₀ᵗ m(s) ds`.  For a Poisson base this
//! is the classical inversion construction of a non-homogeneous Poisson
//! process with rate `λ·m(t)`; for CBR it yields deterministic arrivals that
//! bunch up at the peak and spread out in the trough.  Crucially the warp
//! consumes **no randomness of its own** — the base source draws exactly the
//! same stream values it would unmodulated, so enabling a profile never
//! perturbs any other random stream of the scenario.

use crate::source::TrafficSource;
use caem_simcore::time::{Duration, SimTime};

/// A sinusoidal intensity envelope `m(t) = 1 + a·sin(2πt/T + φ)` with
/// relative amplitude `a ∈ [0, 1)` (so `m(t) > 0` everywhere) and period `T`
/// seconds.  Its long-run mean is exactly 1: modulation reshapes *when*
/// packets arrive, never how many arrive per period on average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCycle {
    period_s: f64,
    amplitude: f64,
    phase_rad: f64,
}

/// Why a [`DiurnalCycle`] could not be constructed: the offending parameter
/// plus its value, so config layers can map it onto their own typed errors
/// instead of parsing a panic message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileError {
    /// The cycle period was zero or negative.
    NonPositivePeriod(f64),
    /// The relative amplitude fell outside `[0, 1)` (the rate would touch
    /// or cross zero).
    AmplitudeOutOfRange(f64),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::NonPositivePeriod(p) => {
                write!(f, "diurnal period must be positive (got {p})")
            }
            ProfileError::AmplitudeOutOfRange(a) => write!(
                f,
                "relative amplitude must be in [0, 1) so the rate stays positive (got {a})"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

impl DiurnalCycle {
    /// Create a cycle with the given period (seconds), relative amplitude in
    /// `[0, 1)` and phase offset (radians), returning a typed
    /// [`ProfileError`] on a bad parameter.  A phase of `-π/2` starts the
    /// cycle at its trough ("midnight") and peaks at `T/2` ("noon").
    pub fn try_new(period_s: f64, amplitude: f64, phase_rad: f64) -> Result<Self, ProfileError> {
        if period_s.is_nan() || period_s <= 0.0 {
            return Err(ProfileError::NonPositivePeriod(period_s));
        }
        if !(0.0..1.0).contains(&amplitude) {
            return Err(ProfileError::AmplitudeOutOfRange(amplitude));
        }
        Ok(DiurnalCycle {
            period_s,
            amplitude,
            phase_rad,
        })
    }

    /// [`DiurnalCycle::try_new`] for pre-validated parameters; panics with
    /// the [`ProfileError`] message on a bad one.
    pub fn new(period_s: f64, amplitude: f64, phase_rad: f64) -> Self {
        Self::try_new(period_s, amplitude, phase_rad)
            .unwrap_or_else(|e| panic!("invalid diurnal cycle: {e}"))
    }

    /// A cycle that starts at its trough and peaks half a period later —
    /// the "midnight start" convention scenario configs use.
    pub fn trough_start(period_s: f64, amplitude: f64) -> Self {
        Self::new(period_s, amplitude, -std::f64::consts::FRAC_PI_2)
    }

    /// The instantaneous intensity multiplier `m(t)` at `t` seconds.
    pub fn intensity(&self, t_s: f64) -> f64 {
        let omega = std::f64::consts::TAU / self.period_s;
        1.0 + self.amplitude * (omega * t_s + self.phase_rad).sin()
    }

    /// The cumulative intensity `Λ(t) = ∫₀ᵗ m(s) ds` — strictly increasing
    /// because `m ≥ 1 − a > 0`.
    pub fn cumulative(&self, t_s: f64) -> f64 {
        let omega = std::f64::consts::TAU / self.period_s;
        t_s - self.amplitude / omega * ((omega * t_s + self.phase_rad).cos() - self.phase_rad.cos())
    }

    /// Invert the cumulative intensity: the unique `t` with `Λ(t) = v`.
    ///
    /// Solved by damped Newton iteration (the derivative is `m(t) ≥ 1 − a`),
    /// clamped to the analytic bracket `|Λ(t) − t| ≤ 2a/ω`; purely
    /// deterministic f64 arithmetic, so warped arrival times are exactly
    /// reproducible per seed.
    pub fn inverse_cumulative(&self, v: f64) -> f64 {
        let omega = std::f64::consts::TAU / self.period_s;
        let slack = 2.0 * self.amplitude / omega;
        let (lo, hi) = (v - slack, v + slack);
        let mut t = v;
        for _ in 0..64 {
            let err = self.cumulative(t) - v;
            if err.abs() <= 1.0e-10 * v.abs().max(1.0) {
                break;
            }
            t = (t - err / self.intensity(t)).clamp(lo, hi);
        }
        t
    }
}

/// Any [`TrafficSource`] warped through a [`DiurnalCycle`]: the base process
/// advances in operational time and each arrival maps back through
/// `Λ⁻¹`, so the instantaneous rate is `base_rate · m(t)` while the long-run
/// mean rate — and the base source's random stream consumption — are
/// unchanged.
#[derive(Debug, Clone)]
pub struct ModulatedSource<S> {
    base: S,
    cycle: DiurnalCycle,
}

impl<S: TrafficSource> ModulatedSource<S> {
    /// Warp `base` through `cycle`.
    pub fn new(base: S, cycle: DiurnalCycle) -> Self {
        ModulatedSource { base, cycle }
    }

    /// The modulation envelope.
    pub fn cycle(&self) -> &DiurnalCycle {
        &self.cycle
    }
}

impl<S: TrafficSource> TrafficSource for ModulatedSource<S> {
    fn next_arrival(&mut self, now: SimTime) -> SimTime {
        let v_now = self.cycle.cumulative(now.as_secs_f64());
        let v_next = self.base.next_arrival(SimTime::from_secs_f64(v_now));
        let t_next = self
            .cycle
            .inverse_cumulative(v_next.as_secs_f64().max(v_now));
        let warped = SimTime::from_secs_f64(t_next.max(0.0));
        if warped > now {
            warped
        } else {
            // Float rounding collapsed a (mathematically positive) gap to
            // zero; keep arrivals strictly increasing at clock granularity.
            now + Duration::from_nanos(1)
        }
    }

    fn mean_rate(&self) -> f64 {
        self.base.mean_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CbrSource, PoissonSource};
    use caem_simcore::rng::StreamRng;

    fn count_in<S: TrafficSource>(source: &mut S, from_s: f64, to_s: f64) -> u64 {
        let mut now = SimTime::from_secs_f64(from_s);
        let end = SimTime::from_secs_f64(to_s);
        let mut count = 0;
        loop {
            now = source.next_arrival(now);
            if now > end {
                return count;
            }
            count += 1;
        }
    }

    #[test]
    fn cumulative_and_inverse_round_trip() {
        let cycle = DiurnalCycle::trough_start(86_400.0, 0.8);
        for &t in &[0.0, 1.0, 1_234.5, 43_200.0, 99_999.9, 250_000.0] {
            let v = cycle.cumulative(t);
            let back = cycle.inverse_cumulative(v);
            assert!((back - t).abs() < 1e-6, "t {t} -> v {v} -> {back}");
        }
        // Λ is a bijection that advances one period per period.
        let one_period = cycle.cumulative(86_400.0);
        assert!((one_period - 86_400.0).abs() < 1e-6);
    }

    #[test]
    fn intensity_mean_is_one_and_trough_start_is_low() {
        let cycle = DiurnalCycle::trough_start(600.0, 0.9);
        assert!((cycle.intensity(0.0) - 0.1).abs() < 1e-12, "trough at t=0");
        assert!((cycle.intensity(300.0) - 1.9).abs() < 1e-12, "peak at T/2");
        let steps = 10_000;
        let mean: f64 = (0..steps)
            .map(|i| cycle.intensity(600.0 * i as f64 / steps as f64))
            .sum::<f64>()
            / steps as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean intensity {mean}");
    }

    #[test]
    fn warped_poisson_keeps_long_run_rate_but_concentrates_at_the_peak() {
        let period = 200.0;
        let base = PoissonSource::new(10.0, StreamRng::from_seed_u64(42));
        let mut warped = ModulatedSource::new(base, DiurnalCycle::trough_start(period, 0.8));
        // Whole periods: the long-run rate matches the base rate.
        let total = count_in(&mut warped, 0.0, 20.0 * period);
        let rate = total as f64 / (20.0 * period);
        assert!((rate - 10.0).abs() < 0.5, "long-run rate {rate}");
        // Within one cycle the trough quarter is far quieter than the peak
        // quarter (expected ratio ≈ (1−0.97·a)/(1+0.97·a) with a = 0.8).
        let mut trough = 0u64;
        let mut peak = 0u64;
        let mut probe = ModulatedSource::new(
            PoissonSource::new(10.0, StreamRng::from_seed_u64(43)),
            DiurnalCycle::trough_start(period, 0.8),
        );
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs_f64(50.0 * period);
        loop {
            now = probe.next_arrival(now);
            if now > end {
                break;
            }
            let phase = now.as_secs_f64() % period / period;
            if !(0.125..0.875).contains(&phase) {
                trough += 1;
            } else if (0.375..0.625).contains(&phase) {
                peak += 1;
            }
        }
        assert!(
            (peak as f64) > 3.0 * trough as f64,
            "peak quarter {peak} vs trough quarter {trough}"
        );
    }

    #[test]
    fn warped_cbr_bunches_deterministically() {
        let mut warped =
            ModulatedSource::new(CbrSource::new(1.0), DiurnalCycle::trough_start(100.0, 0.5));
        let mut again = warped.clone();
        let mut now = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..100 {
            let next = warped.next_arrival(now);
            assert!(next > now, "arrivals strictly increase");
            assert_eq!(next, again.next_arrival(now), "warp is deterministic");
            gaps.push((next - now).as_secs_f64());
            now = next;
        }
        let (min, max) = gaps.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &g| {
            (lo.min(g), hi.max(g))
        });
        // CBR at 1 pps under a ±0.5 envelope: gaps swing around 1 s.
        assert!(min < 0.75 && max > 1.3, "gaps {min}..{max}");
        assert!((warped.mean_rate() - 1.0).abs() < 1e-12);
    }
}
