//! Traffic sources.
//!
//! The paper's workload: "Each sensor node is a Poisson source, the generated
//! packet follows a Poisson arrival", with the per-node rate ("added traffic
//! load") swept from 5 to 30 packets/second.  [`PoissonSource`] is that
//! model; [`CbrSource`] and [`BurstySource`] are extensions used by the extra
//! examples and the ablation bench to show CAEM's sensitivity to traffic
//! burstiness.

use caem_simcore::rng::StreamRng;
use caem_simcore::time::{Duration, SimTime};

/// A generator of packet arrival instants for one node.
pub trait TrafficSource {
    /// The time of the next packet arrival strictly after `now`.
    fn next_arrival(&mut self, now: SimTime) -> SimTime;

    /// Long-run average rate in packets per second.
    fn mean_rate(&self) -> f64;
}

/// Poisson arrivals: exponential inter-arrival times with the given rate.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    rate_pps: f64,
    /// `1 / rate_pps`, precomputed so each arrival draw multiplies instead of
    /// divides (one draw per generated packet — a hot path).
    mean_gap_s: f64,
    rng: StreamRng,
}

impl PoissonSource {
    /// Create a Poisson source with `rate_pps` packets per second.
    pub fn new(rate_pps: f64, rng: StreamRng) -> Self {
        assert!(rate_pps > 0.0, "Poisson rate must be positive");
        PoissonSource {
            rate_pps,
            mean_gap_s: 1.0 / rate_pps,
            rng,
        }
    }
}

impl TrafficSource for PoissonSource {
    fn next_arrival(&mut self, now: SimTime) -> SimTime {
        let gap = self.rng.exponential_mean(self.mean_gap_s);
        now + Duration::from_secs_f64(gap)
    }

    fn mean_rate(&self) -> f64 {
        self.rate_pps
    }
}

/// Constant-bit-rate arrivals: fixed inter-arrival period.
#[derive(Debug, Clone)]
pub struct CbrSource {
    period: Duration,
}

impl CbrSource {
    /// Create a CBR source with `rate_pps` packets per second.
    pub fn new(rate_pps: f64) -> Self {
        assert!(rate_pps > 0.0, "CBR rate must be positive");
        CbrSource {
            period: Duration::from_secs_f64(1.0 / rate_pps),
        }
    }
}

impl TrafficSource for CbrSource {
    fn next_arrival(&mut self, now: SimTime) -> SimTime {
        now + self.period
    }

    fn mean_rate(&self) -> f64 {
        1.0 / self.period.as_secs_f64()
    }
}

/// Two-state bursty source (a simple Markov-modulated Poisson process).
///
/// The source alternates between a *quiet* state and a *burst* state, each
/// with its own Poisson rate; the state flips at exponentially distributed
/// epochs.  Models event-driven sensing (e.g. an intrusion triggers a flurry
/// of reports) better than a homogeneous Poisson stream.
#[derive(Debug, Clone)]
pub struct BurstySource {
    quiet_rate_pps: f64,
    burst_rate_pps: f64,
    mean_quiet_s: f64,
    mean_burst_s: f64,
    in_burst: bool,
    state_expires: SimTime,
    rng: StreamRng,
}

impl BurstySource {
    /// Create a bursty source.
    ///
    /// * `quiet_rate_pps` / `burst_rate_pps` — Poisson rates in each state.
    /// * `mean_quiet_s` / `mean_burst_s` — mean sojourn times in each state.
    pub fn new(
        quiet_rate_pps: f64,
        burst_rate_pps: f64,
        mean_quiet_s: f64,
        mean_burst_s: f64,
        rng: StreamRng,
    ) -> Self {
        assert!(
            quiet_rate_pps > 0.0 && burst_rate_pps > 0.0,
            "rates must be positive"
        );
        assert!(
            mean_quiet_s > 0.0 && mean_burst_s > 0.0,
            "sojourn times must be positive"
        );
        BurstySource {
            quiet_rate_pps,
            burst_rate_pps,
            mean_quiet_s,
            mean_burst_s,
            in_burst: false,
            state_expires: SimTime::ZERO,
            rng,
        }
    }

    fn maybe_switch_state(&mut self, now: SimTime) {
        while now >= self.state_expires {
            self.in_burst = !self.in_burst;
            let mean = if self.in_burst {
                self.mean_burst_s
            } else {
                self.mean_quiet_s
            };
            let sojourn = self.rng.exponential(1.0 / mean);
            self.state_expires = self.state_expires.max(now) + Duration::from_secs_f64(sojourn);
        }
    }

    /// Is the source currently in its burst state?
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

impl TrafficSource for BurstySource {
    fn next_arrival(&mut self, now: SimTime) -> SimTime {
        // Draw within the current state; if the candidate arrival falls past
        // the state boundary, move to the boundary and redraw in the new
        // state (valid because exponential gaps are memoryless).  Without the
        // redraw the long-run rate is biased low whenever a quiet-state gap
        // straddles a burst period.
        let mut t = now;
        loop {
            self.maybe_switch_state(t);
            let rate = if self.in_burst {
                self.burst_rate_pps
            } else {
                self.quiet_rate_pps
            };
            let gap = self.rng.exponential(rate);
            let candidate = t + Duration::from_secs_f64(gap);
            if candidate <= self.state_expires {
                return candidate;
            }
            t = self.state_expires;
        }
    }

    fn mean_rate(&self) -> f64 {
        // Long-run average weighted by state occupancy.
        let total = self.mean_quiet_s + self.mean_burst_s;
        (self.quiet_rate_pps * self.mean_quiet_s + self.burst_rate_pps * self.mean_burst_s) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure_rate<S: TrafficSource>(source: &mut S, horizon_s: f64) -> f64 {
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs_f64(horizon_s);
        let mut count = 0u64;
        loop {
            now = source.next_arrival(now);
            if now > end {
                break;
            }
            count += 1;
        }
        count as f64 / horizon_s
    }

    #[test]
    fn poisson_rate_matches_nominal() {
        // 5 pkt/s is the Fig. 8/9 operating point.
        let mut s = PoissonSource::new(5.0, StreamRng::from_seed_u64(1));
        let rate = measure_rate(&mut s, 2_000.0);
        assert!((rate - 5.0).abs() < 0.2, "measured {rate}");
        assert_eq!(s.mean_rate(), 5.0);
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        let mut s = PoissonSource::new(10.0, StreamRng::from_seed_u64(2));
        let mut now = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..20_000 {
            let next = s.next_arrival(now);
            gaps.push((next - now).as_secs_f64());
            now = next;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "coefficient of variation {cv}");
    }

    #[test]
    fn poisson_arrivals_strictly_increase() {
        let mut s = PoissonSource::new(30.0, StreamRng::from_seed_u64(3));
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let next = s.next_arrival(now);
            assert!(next > now);
            now = next;
        }
    }

    #[test]
    fn cbr_is_perfectly_regular() {
        let mut s = CbrSource::new(4.0);
        let mut now = SimTime::ZERO;
        for i in 1..=8 {
            now = s.next_arrival(now);
            assert_eq!(now, SimTime::from_millis(250 * i));
        }
        assert!((s.mean_rate() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_long_run_rate_matches_formula() {
        let mut s = BurstySource::new(2.0, 40.0, 9.0, 1.0, StreamRng::from_seed_u64(4));
        let nominal = s.mean_rate();
        // (2*9 + 40*1)/10 = 5.8 pkt/s
        assert!((nominal - 5.8).abs() < 1e-9);
        let measured = measure_rate(&mut s, 5_000.0);
        assert!(
            (measured - nominal).abs() < 0.4,
            "measured {measured} vs nominal {nominal}"
        );
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        // Compare inter-arrival coefficient of variation: MMPP > 1.
        let mut s = BurstySource::new(1.0, 50.0, 5.0, 0.5, StreamRng::from_seed_u64(5));
        let mut now = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..20_000 {
            let next = s.next_arrival(now);
            gaps.push((next - now).as_secs_f64());
            now = next;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.3, "cv = {cv} should exceed Poisson's 1.0");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PoissonSource::new(5.0, StreamRng::from_seed_u64(9));
        let mut b = PoissonSource::new(5.0, StreamRng::from_seed_u64(9));
        let mut ta = SimTime::ZERO;
        let mut tb = SimTime::ZERO;
        for _ in 0..100 {
            ta = a.next_arrival(ta);
            tb = b.next_arrival(tb);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        PoissonSource::new(0.0, StreamRng::from_seed_u64(1));
    }
}
