//! The packet record carried from a sensor to its cluster head.

use caem_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Globally unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// A sensed-data packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier.
    pub id: PacketId,
    /// Index of the sensor node that generated the packet.
    pub source_node: usize,
    /// Virtual time at which the packet was generated (enqueue time).
    pub created_at: SimTime,
    /// Payload size in bits (Table II: 2 kbit).
    pub size_bits: u64,
}

impl Packet {
    /// Create a packet with the paper's default 2-kbit payload.
    pub fn new(id: PacketId, source_node: usize, created_at: SimTime) -> Self {
        Packet {
            id,
            source_node,
            created_at,
            size_bits: 2_000,
        }
    }

    /// Create a packet with an explicit size.
    pub fn with_size(
        id: PacketId,
        source_node: usize,
        created_at: SimTime,
        size_bits: u64,
    ) -> Self {
        Packet {
            id,
            source_node,
            created_at,
            size_bits,
        }
    }

    /// Queueing + transmission delay if the packet is delivered at `now`.
    pub fn delay_at(&self, now: SimTime) -> caem_simcore::time::Duration {
        now.saturating_since(self.created_at)
    }
}

/// Monotonic packet-id allocator shared by all sources in a scenario.
#[derive(Debug, Clone, Default)]
pub struct PacketIdAllocator {
    next: u64,
}

impl PacketIdAllocator {
    /// Create an allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next id.
    pub fn allocate(&mut self) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::time::Duration;

    #[test]
    fn default_packet_is_2_kbit() {
        let p = Packet::new(PacketId(1), 7, SimTime::from_secs(3));
        assert_eq!(p.size_bits, 2_000);
        assert_eq!(p.source_node, 7);
    }

    #[test]
    fn delay_computation() {
        let p = Packet::new(PacketId(1), 0, SimTime::from_millis(100));
        assert_eq!(
            p.delay_at(SimTime::from_millis(350)),
            Duration::from_millis(250)
        );
        // Delivery "before" creation (cannot happen, but must not underflow).
        assert_eq!(p.delay_at(SimTime::from_millis(50)), Duration::ZERO);
    }

    #[test]
    fn id_allocator_is_monotonic_and_unique() {
        let mut alloc = PacketIdAllocator::new();
        let ids: Vec<PacketId> = (0..100).map(|_| alloc.allocate()).collect();
        assert_eq!(alloc.allocated(), 100);
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert_eq!(ids[0], PacketId(0));
        assert_eq!(ids[99], PacketId(99));
    }

    #[test]
    fn custom_size_packet() {
        let p = Packet::with_size(PacketId(2), 1, SimTime::ZERO, 512);
        assert_eq!(p.size_bits, 512);
    }
}
