//! Random backoff before accessing the data channel.
//!
//! Section III-B: when a sensor finds the channel idle and the quality above
//! its threshold, it "backs off for a random period of time, which equals
//! `rand[0,1) × 2^r × 20 × CW`", where `r` is the number of times the packet
//! has been retransmitted (capped at 6) and `CW` is the contention window
//! size (Table II: 10).  The base slot of 20 µs corresponds to the RFM-class
//! radio's turnaround granularity; with `CW = 10` the first-attempt backoff
//! is uniform in `[0, 200 µs)` and the cap (r = 6) stretches it to
//! `[0, 12.8 ms)`.

use caem_simcore::rng::StreamRng;
use caem_simcore::time::Duration;
use serde::{Deserialize, Serialize};

/// Maximum number of retransmissions of a single packet (paper: 6).
pub const MAX_RETRANSMISSIONS: u32 = 6;

/// Backoff parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffConfig {
    /// Base slot time multiplied into every backoff (paper: "20", read as
    /// 20 µs).
    pub slot: Duration,
    /// Contention window size (Table II: 10).
    pub contention_window: u32,
    /// Retransmission cap for the exponent (paper: 6).
    pub max_retransmissions: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig::paper_default()
    }
}

impl BackoffConfig {
    /// The paper's parameters: 20 µs slot, CW = 10, r ≤ 6.
    pub fn paper_default() -> Self {
        BackoffConfig {
            slot: Duration::from_micros(20),
            contention_window: 10,
            max_retransmissions: MAX_RETRANSMISSIONS,
        }
    }

    /// Largest possible backoff for a given retry count.
    pub fn max_backoff(&self, retries: u32) -> Duration {
        let r = retries.min(self.max_retransmissions);
        self.slot * (1u64 << r) * self.contention_window as u64
    }
}

/// Stateful backoff scheduler for one sensor node.
#[derive(Debug, Clone)]
pub struct BackoffScheduler {
    config: BackoffConfig,
    rng: StreamRng,
    retries: u32,
    draws: u64,
}

impl BackoffScheduler {
    /// Create a scheduler with its own random stream.
    pub fn new(config: BackoffConfig, rng: StreamRng) -> Self {
        BackoffScheduler {
            config,
            rng,
            retries: 0,
            draws: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> BackoffConfig {
        self.config
    }

    /// Current retransmission count for the head-of-line packet.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Number of backoff intervals drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Draw the backoff interval for the next access attempt:
    /// `rand[0,1) × 2^r × slot × CW`.
    pub fn next_backoff(&mut self) -> Duration {
        let r = self.retries.min(self.config.max_retransmissions);
        let window = self.config.max_backoff(r);
        self.draws += 1;
        window.mul_f64(self.rng.next_f64())
    }

    /// Record that the current attempt failed (collision or lost channel):
    /// the retry counter grows, widening subsequent backoffs, and the method
    /// reports whether the packet may still be retried.
    pub fn record_failure(&mut self) -> bool {
        self.retries += 1;
        self.retries <= self.config.max_retransmissions
    }

    /// Record a successful transmission: the retry counter resets for the
    /// next head-of-line packet.
    pub fn record_success(&mut self) {
        self.retries = 0;
    }

    /// Has the head-of-line packet exhausted its retransmission budget?
    pub fn exhausted(&self) -> bool {
        self.retries > self.config.max_retransmissions
    }

    /// Give up on the head-of-line packet (after exhaustion): reset retries.
    pub fn reset(&mut self) {
        self.retries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(seed: u64) -> BackoffScheduler {
        BackoffScheduler::new(
            BackoffConfig::paper_default(),
            StreamRng::from_seed_u64(seed),
        )
    }

    #[test]
    fn paper_defaults() {
        let c = BackoffConfig::paper_default();
        assert_eq!(c.slot, Duration::from_micros(20));
        assert_eq!(c.contention_window, 10);
        assert_eq!(c.max_retransmissions, 6);
        assert_eq!(c.max_backoff(0), Duration::from_micros(200));
        assert_eq!(c.max_backoff(6), Duration::from_micros(200 * 64));
        // Retries beyond the cap do not widen the window further.
        assert_eq!(c.max_backoff(20), c.max_backoff(6));
    }

    #[test]
    fn backoff_is_within_window() {
        let mut s = scheduler(1);
        for _ in 0..1000 {
            let b = s.next_backoff();
            assert!(b <= s.config().max_backoff(0));
        }
        assert_eq!(s.draws(), 1000);
    }

    #[test]
    fn backoff_window_doubles_with_failures() {
        let mut s = scheduler(2);
        let samples = |s: &mut BackoffScheduler, n: usize| -> f64 {
            (0..n).map(|_| s.next_backoff().as_secs_f64()).sum::<f64>() / n as f64
        };
        let mean0 = samples(&mut s, 2000);
        s.record_failure();
        let mean1 = samples(&mut s, 2000);
        s.record_failure();
        let mean2 = samples(&mut s, 2000);
        // Mean of U[0, W) is W/2; each failure doubles W.
        assert!((mean1 / mean0 - 2.0).abs() < 0.3, "{mean1}/{mean0}");
        assert!((mean2 / mean1 - 2.0).abs() < 0.3, "{mean2}/{mean1}");
    }

    #[test]
    fn success_resets_retries() {
        let mut s = scheduler(3);
        s.record_failure();
        s.record_failure();
        assert_eq!(s.retries(), 2);
        s.record_success();
        assert_eq!(s.retries(), 0);
        assert!(!s.exhausted());
    }

    #[test]
    fn exhaustion_after_max_retransmissions() {
        let mut s = scheduler(4);
        for i in 1..=6 {
            let may_retry = s.record_failure();
            assert!(may_retry, "retry {i} should still be allowed");
        }
        let may_retry = s.record_failure();
        assert!(!may_retry, "7th failure exceeds the cap");
        assert!(s.exhausted());
        s.reset();
        assert!(!s.exhausted());
        assert_eq!(s.retries(), 0);
    }

    #[test]
    fn backoff_distribution_is_roughly_uniform() {
        let mut s = scheduler(5);
        let window = s.config().max_backoff(0).as_secs_f64();
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| s.next_backoff().as_secs_f64()).sum::<f64>() / n as f64;
        assert!((mean - window / 2.0).abs() < window * 0.03, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = scheduler(9);
        let mut b = scheduler(9);
        for _ in 0..100 {
            assert_eq!(a.next_backoff(), b.next_backoff());
        }
    }
}
