//! The tone signaling channel (Section III-A, Table I).
//!
//! Instead of a cellular-style dedicated control channel, the cluster head
//! broadcasts short tone pulses on a separate low-power radio.  The
//! *inter-pulse interval* identifies the data-channel state; the *received
//! strength* of the pulses gives each sensor the CSI of the (reciprocal) data
//! channel.  The broadcast rules from the paper:
//!
//! * **idle** — while the data channel is free the head periodically
//!   broadcasts idle pulses of 1 ms duration with a 50 ms period;
//! * **receive** — while receiving a packet burst the head sends 0.5 ms
//!   pulses every 10 ms so the sending sensor can keep adapting its error
//!   protection to the live channel;
//! * **collision** — on detecting packet corruption the head sends a single
//!   0.5 ms collision pulse (a distinct, shorter interval);
//! * back to **idle** pulses once the channel frees up.

use caem_simcore::time::Duration;
use serde::{Deserialize, Serialize};

/// State of the shared data channel as advertised on the tone channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelState {
    /// No packet is being received or transmitted; the data channel is free.
    Idle,
    /// The sink is receiving data packets from a node in the cluster.
    Receive,
    /// More than one node transmitted simultaneously; packets collided.
    Collision,
    /// The sink is forwarding processed data to the base station.  The paper
    /// defines this state but does not exercise it ("we do not consider this
    /// at this stage"); it is included for completeness.
    Transmit,
}

impl ChannelState {
    /// All states, in a fixed order.
    pub const ALL: [ChannelState; 4] = [
        ChannelState::Idle,
        ChannelState::Receive,
        ChannelState::Collision,
        ChannelState::Transmit,
    ];
}

/// Timing of the tone pulses for one channel state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TonePulse {
    /// Duration of each pulse.
    pub duration: Duration,
    /// Interval between the start of consecutive pulses.  For one-shot
    /// notifications (collision) this is the guard interval after which the
    /// head reverts to the idle pattern.
    pub interval: Duration,
    /// Whether the pulse train repeats (idle/receive) or fires once
    /// (collision).
    pub repeating: bool,
}

/// The pulse schedule used by a cluster head — Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToneSchedule {
    /// Idle-state pulse train (1 ms pulses every 50 ms).
    pub idle: TonePulse,
    /// Receive-state pulse train (0.5 ms pulses every 10 ms).
    pub receive: TonePulse,
    /// Collision notification (single 0.5 ms pulse).
    pub collision: TonePulse,
    /// Transmit-state pulse train (0.5 ms pulses every 15 ms).
    pub transmit: TonePulse,
}

impl Default for ToneSchedule {
    fn default() -> Self {
        ToneSchedule::paper_default()
    }
}

impl ToneSchedule {
    /// The schedule from Section III-A / Table I.
    pub fn paper_default() -> Self {
        ToneSchedule {
            idle: TonePulse {
                duration: Duration::from_millis(1),
                interval: Duration::from_millis(50),
                repeating: true,
            },
            receive: TonePulse {
                duration: Duration::from_micros(500),
                interval: Duration::from_millis(10),
                repeating: true,
            },
            collision: TonePulse {
                duration: Duration::from_micros(500),
                interval: Duration::from_millis(5),
                repeating: false,
            },
            transmit: TonePulse {
                duration: Duration::from_micros(500),
                interval: Duration::from_millis(15),
                repeating: true,
            },
        }
    }

    /// The pulse timing for a given channel state.
    pub fn pulse_for(&self, state: ChannelState) -> TonePulse {
        match state {
            ChannelState::Idle => self.idle,
            ChannelState::Receive => self.receive,
            ChannelState::Collision => self.collision,
            ChannelState::Transmit => self.transmit,
        }
    }

    /// Decode a channel state from an observed inter-pulse interval.
    ///
    /// A sensor classifies the interval to the nearest scheduled interval;
    /// `tolerance` (fraction, e.g. 0.2 = ±20 %) bounds how far off an
    /// observation may be before it is rejected as noise (`None`).
    pub fn classify_interval(&self, observed: Duration, tolerance: f64) -> Option<ChannelState> {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let mut best: Option<(ChannelState, f64)> = None;
        for state in ChannelState::ALL {
            let nominal = self.pulse_for(state).interval.as_secs_f64();
            let obs = observed.as_secs_f64();
            let rel_err = (obs - nominal).abs() / nominal;
            if rel_err <= tolerance {
                match best {
                    Some((_, e)) if e <= rel_err => {}
                    _ => best = Some((state, rel_err)),
                }
            }
        }
        best.map(|(s, _)| s)
    }

    /// Fraction of time the tone radio of the cluster head is actively
    /// transmitting while advertising `state` (duty cycle).
    pub fn duty_cycle(&self, state: ChannelState) -> f64 {
        let p = self.pulse_for(state);
        if p.interval.is_zero() {
            return 1.0;
        }
        (p.duration.as_secs_f64() / p.interval.as_secs_f64()).min(1.0)
    }

    /// Worst-case time a newly woken sensor must listen before it has seen at
    /// least one pulse of the current state (i.e. one full interval plus one
    /// pulse).  This is the "tracking delay" overhead the paper mentions.
    pub fn acquisition_time(&self, state: ChannelState) -> Duration {
        let p = self.pulse_for(state);
        p.interval + p.duration
    }
}

/// One decoded observation of the tone channel as seen by a sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToneSignal {
    /// The advertised data-channel state.
    pub state: ChannelState,
    /// Measured SNR of the tone pulses, in dB (the CSI estimate).
    pub tone_snr_db: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_matches_section_iii() {
        let s = ToneSchedule::paper_default();
        assert_eq!(s.idle.duration, Duration::from_millis(1));
        assert_eq!(s.idle.interval, Duration::from_millis(50));
        assert!(s.idle.repeating);
        assert_eq!(s.receive.duration, Duration::from_micros(500));
        assert_eq!(s.receive.interval, Duration::from_millis(10));
        assert!(!s.collision.repeating);
        assert_eq!(s.collision.duration, Duration::from_micros(500));
    }

    #[test]
    fn intervals_are_distinguishable() {
        let s = ToneSchedule::paper_default();
        let mut intervals: Vec<u64> = ChannelState::ALL
            .iter()
            .map(|&st| s.pulse_for(st).interval.as_nanos())
            .collect();
        intervals.sort_unstable();
        intervals.dedup();
        assert_eq!(intervals.len(), 4, "each state needs a unique interval");
    }

    #[test]
    fn classify_exact_intervals() {
        let s = ToneSchedule::paper_default();
        for state in ChannelState::ALL {
            let observed = s.pulse_for(state).interval;
            assert_eq!(s.classify_interval(observed, 0.1), Some(state));
        }
    }

    #[test]
    fn classify_with_jitter_and_noise() {
        let s = ToneSchedule::paper_default();
        // 10% jitter on the 50 ms idle interval still decodes as idle.
        assert_eq!(
            s.classify_interval(Duration::from_millis(54), 0.2),
            Some(ChannelState::Idle)
        );
        // A wildly off interval decodes to nothing.
        assert_eq!(s.classify_interval(Duration::from_millis(200), 0.2), None);
        assert_eq!(s.classify_interval(Duration::from_micros(100), 0.2), None);
    }

    #[test]
    fn classification_picks_nearest_state() {
        let s = ToneSchedule::paper_default();
        // 11 ms is closest to the 10 ms receive interval even with a generous
        // tolerance that would also admit 15 ms transmit.
        assert_eq!(
            s.classify_interval(Duration::from_millis(11), 0.5),
            Some(ChannelState::Receive)
        );
    }

    #[test]
    fn duty_cycles_are_low_power() {
        let s = ToneSchedule::paper_default();
        // Idle: 1 ms / 50 ms = 2 %.
        assert!((s.duty_cycle(ChannelState::Idle) - 0.02).abs() < 1e-9);
        // Receive: 0.5 ms / 10 ms = 5 %.
        assert!((s.duty_cycle(ChannelState::Receive) - 0.05).abs() < 1e-9);
        for st in ChannelState::ALL {
            assert!(s.duty_cycle(st) <= 0.10, "{st:?} duty cycle too high");
        }
    }

    #[test]
    fn acquisition_time_bounds_tracking_delay() {
        let s = ToneSchedule::paper_default();
        assert_eq!(
            s.acquisition_time(ChannelState::Idle),
            Duration::from_millis(51)
        );
        assert!(s.acquisition_time(ChannelState::Receive) < s.acquisition_time(ChannelState::Idle));
    }

    #[test]
    #[should_panic]
    fn negative_tolerance_rejected() {
        ToneSchedule::paper_default().classify_interval(Duration::from_millis(50), -0.1);
    }
}
