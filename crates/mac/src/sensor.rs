//! Sensor-node MAC state machine (Fig. 3 of the paper).
//!
//! States and transitions:
//!
//! ```text
//!            packets queued                channel idle ∧ CSI ≥ threshold
//!   Sleep ───────────────────► Sensing ───────────────────────────────► Backoff
//!     ▲                          ▲  ▲                                      │
//!     │ queue drained            │  │ conditions no longer hold            │ backoff expired,
//!     │ or tone lost             │  └──────────────────────────────────────┘ conditions re-checked
//!     │                          │ collision tone / burst aborted
//!     └────────── Transmitting ◄─┴─────────────────────────────────────────┘
//! ```
//!
//! The struct is a *pure* state machine: every method consumes an observation
//! and returns the [`SensorAction`] the node should carry out (turn a radio
//! on, start a timer, start or abort a burst).  All timing, energy accounting
//! and queue manipulation happen in `caem-wsnsim`, which keeps this logic
//! independently testable.

use caem_simcore::rng::StreamRng;
use caem_simcore::time::Duration;
use serde::{Deserialize, Serialize};

use crate::backoff::{BackoffConfig, BackoffScheduler};
use crate::burst::BurstPolicy;
use crate::tone::{ChannelState, ToneSignal};

/// The MAC-layer state of a sensor node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorMacState {
    /// Both radios off; no packets to send (or cluster head lost).
    Sleep,
    /// Tone radio on, monitoring the channel state and CSI.
    Sensing,
    /// Conditions were satisfied; waiting out the random backoff.
    Backoff,
    /// Data radio on, sending a burst of packets.
    Transmitting,
}

/// What the node should do next, as decided by the state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorAction {
    /// Nothing to do; stay in the current state.
    None,
    /// Turn the tone radio on and start monitoring the channel.
    StartSensing,
    /// Start a backoff timer of the given duration (tone radio stays on).
    StartBackoff(Duration),
    /// Wake the data radio (incurring the start-up cost) and transmit a burst
    /// of `burst_size` packets.
    StartTransmission {
        /// Number of packets to include in the burst.
        burst_size: usize,
    },
    /// Stop the ongoing burst immediately (collision detected) and power the
    /// data radio down.
    AbortTransmission,
    /// Power both radios down and sleep.
    EnterSleep,
}

/// Configuration of the sensor MAC.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorMacConfig {
    /// Backoff parameters.
    pub backoff: BackoffConfig,
    /// Burst sizing policy.
    pub burst: BurstPolicy,
}

/// Per-node MAC statistics, exposed for the metrics crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorMacStats {
    /// Bursts started.
    pub bursts_started: u64,
    /// Bursts aborted by a collision tone.
    pub bursts_aborted: u64,
    /// Bursts completed successfully.
    pub bursts_completed: u64,
    /// Burst-eligible idle observations deferred because the CSI was below
    /// the threshold.  Since the lazy-CSI rework the channel is only measured
    /// once the busy and minimum-burst gates pass, so observations that were
    /// *also* below the burst minimum no longer count here (they previously
    /// did).
    pub deferred_low_csi: u64,
    /// Access attempts deferred because the channel was busy.
    pub deferred_busy: u64,
    /// Packets dropped after exhausting the retransmission budget.
    pub packets_abandoned: u64,
}

/// The sensor MAC state machine.
#[derive(Debug, Clone)]
pub struct SensorMac {
    state: SensorMacState,
    config: SensorMacConfig,
    backoff: BackoffScheduler,
    stats: SensorMacStats,
    pending_burst: usize,
}

impl SensorMac {
    /// Create a sensor MAC with its own backoff random stream.
    pub fn new(config: SensorMacConfig, backoff_rng: StreamRng) -> Self {
        SensorMac {
            state: SensorMacState::Sleep,
            config,
            backoff: BackoffScheduler::new(config.backoff, backoff_rng),
            stats: SensorMacStats::default(),
            pending_burst: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SensorMacState {
        self.state
    }

    /// MAC statistics so far.
    pub fn stats(&self) -> SensorMacStats {
        self.stats
    }

    /// The burst size chosen when the current transmission started.
    pub fn pending_burst(&self) -> usize {
        self.pending_burst
    }

    /// Number of retransmissions of the head-of-line packet so far.
    pub fn retries(&self) -> u32 {
        self.backoff.retries()
    }

    /// The node has (or received) packets to send while asleep.
    pub fn packets_pending(&mut self, queued: usize) -> SensorAction {
        if queued == 0 {
            return SensorAction::None;
        }
        match self.state {
            SensorMacState::Sleep => {
                self.state = SensorMacState::Sensing;
                SensorAction::StartSensing
            }
            _ => SensorAction::None,
        }
    }

    /// Evaluate the transmission conditions, deriving the CSI *lazily*.
    ///
    /// The checks are ordered cheapest-first so the expensive CSI measurement
    /// (shadowing/fading evolution in the channel crate) only runs when the
    /// channel is idle **and** the queue actually justifies a burst — on a
    /// loaded network the busy check alone short-circuits most observations.
    fn conditions_met<F: FnOnce() -> f64>(
        &mut self,
        state: ChannelState,
        csi_db: F,
        threshold_snr_db: f64,
        queued: usize,
        urgent: bool,
    ) -> bool {
        if state != ChannelState::Idle {
            self.stats.deferred_busy += 1;
            return false;
        }
        if !self.config.burst.should_transmit(queued, urgent) {
            return false;
        }
        if csi_db() < threshold_snr_db {
            self.stats.deferred_low_csi += 1;
            return false;
        }
        true
    }

    /// A tone observation arrived while the node is sensing.
    ///
    /// * `signal = None` means the tone channel went silent (cluster head
    ///   collapsed or switched): the node powers down.
    /// * `threshold_snr_db` is the transmission threshold currently demanded
    ///   by the CAEM policy (the *tone-channel* SNR equivalent).
    /// * `urgent` is set by the policy when the buffer is under overflow
    ///   pressure, waiving the minimum burst size.
    pub fn observe_tone(
        &mut self,
        signal: Option<ToneSignal>,
        threshold_snr_db: f64,
        queued: usize,
        urgent: bool,
    ) -> SensorAction {
        match signal {
            Some(signal) => self.observe_tone_lazy(
                Some(signal.state),
                || signal.tone_snr_db,
                threshold_snr_db,
                queued,
                urgent,
            ),
            None => self.observe_tone_lazy(None, || 0.0, threshold_snr_db, queued, urgent),
        }
    }

    /// Lazy-CSI variant of [`SensorMac::observe_tone`]: the channel state is
    /// always known (it is read from the cheap tone-pulse cadence), while the
    /// CSI closure is only invoked if the decision actually depends on it.
    /// `state = None` means the tone channel went silent.
    pub fn observe_tone_lazy<F: FnOnce() -> f64>(
        &mut self,
        state: Option<ChannelState>,
        csi_db: F,
        threshold_snr_db: f64,
        queued: usize,
        urgent: bool,
    ) -> SensorAction {
        let Some(state) = state else {
            self.state = SensorMacState::Sleep;
            return SensorAction::EnterSleep;
        };
        match self.state {
            SensorMacState::Sensing => {
                if queued == 0 {
                    self.state = SensorMacState::Sleep;
                    return SensorAction::EnterSleep;
                }
                if self.conditions_met(state, csi_db, threshold_snr_db, queued, urgent) {
                    self.state = SensorMacState::Backoff;
                    SensorAction::StartBackoff(self.backoff.next_backoff())
                } else {
                    SensorAction::None
                }
            }
            // Observations in other states carry no new decision here; the
            // collision case is handled by `collision_detected`.
            _ => SensorAction::None,
        }
    }

    /// The backoff timer expired; the node re-checks both conditions before
    /// committing the data radio.
    pub fn backoff_expired(
        &mut self,
        signal: Option<ToneSignal>,
        threshold_snr_db: f64,
        queued: usize,
        urgent: bool,
    ) -> SensorAction {
        match signal {
            Some(signal) => self.backoff_expired_lazy(
                Some(signal.state),
                || signal.tone_snr_db,
                threshold_snr_db,
                queued,
                urgent,
            ),
            None => self.backoff_expired_lazy(None, || 0.0, threshold_snr_db, queued, urgent),
        }
    }

    /// Lazy-CSI variant of [`SensorMac::backoff_expired`]; see
    /// [`SensorMac::observe_tone_lazy`] for the contract.
    pub fn backoff_expired_lazy<F: FnOnce() -> f64>(
        &mut self,
        state: Option<ChannelState>,
        csi_db: F,
        threshold_snr_db: f64,
        queued: usize,
        urgent: bool,
    ) -> SensorAction {
        if self.state != SensorMacState::Backoff {
            return SensorAction::None;
        }
        let Some(state) = state else {
            self.state = SensorMacState::Sleep;
            return SensorAction::EnterSleep;
        };
        if queued == 0 {
            self.state = SensorMacState::Sleep;
            return SensorAction::EnterSleep;
        }
        if self.conditions_met(state, csi_db, threshold_snr_db, queued, urgent) {
            self.state = SensorMacState::Transmitting;
            self.pending_burst = self.config.burst.burst_size(queued);
            self.stats.bursts_started += 1;
            SensorAction::StartTransmission {
                burst_size: self.pending_burst,
            }
        } else {
            self.state = SensorMacState::Sensing;
            SensorAction::None
        }
    }

    /// A collision tone was heard while transmitting: abort the burst.
    ///
    /// Returns the action plus whether the head-of-line packet may still be
    /// retried (false once the retransmission budget is exhausted, in which
    /// case the caller should drop it).
    pub fn collision_detected(&mut self) -> (SensorAction, bool) {
        if self.state != SensorMacState::Transmitting {
            return (SensorAction::None, true);
        }
        self.stats.bursts_aborted += 1;
        let may_retry = self.backoff.record_failure();
        if !may_retry {
            self.stats.packets_abandoned += 1;
            self.backoff.reset();
        }
        self.state = SensorMacState::Sensing;
        self.pending_burst = 0;
        (SensorAction::AbortTransmission, may_retry)
    }

    /// The burst finished without collision.
    pub fn burst_complete(&mut self, packets_still_queued: usize) -> SensorAction {
        if self.state != SensorMacState::Transmitting {
            return SensorAction::None;
        }
        self.stats.bursts_completed += 1;
        self.backoff.record_success();
        self.pending_burst = 0;
        if packets_still_queued > 0 {
            self.state = SensorMacState::Sensing;
            SensorAction::StartSensing
        } else {
            self.state = SensorMacState::Sleep;
            SensorAction::EnterSleep
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(state: ChannelState, snr: f64) -> Option<ToneSignal> {
        Some(ToneSignal {
            state,
            tone_snr_db: snr,
        })
    }

    fn mac(seed: u64) -> SensorMac {
        SensorMac::new(SensorMacConfig::default(), StreamRng::from_seed_u64(seed))
    }

    #[test]
    fn starts_asleep_and_wakes_on_packets() {
        let mut m = mac(1);
        assert_eq!(m.state(), SensorMacState::Sleep);
        assert_eq!(m.packets_pending(0), SensorAction::None);
        assert_eq!(m.state(), SensorMacState::Sleep);
        assert_eq!(m.packets_pending(3), SensorAction::StartSensing);
        assert_eq!(m.state(), SensorMacState::Sensing);
        // Waking again while already sensing is a no-op.
        assert_eq!(m.packets_pending(4), SensorAction::None);
    }

    #[test]
    fn full_happy_path_to_transmission() {
        let mut m = mac(2);
        m.packets_pending(5);
        // Good channel, idle, enough packets: go to backoff.
        let a = m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 5, false);
        match a {
            SensorAction::StartBackoff(d) => assert!(d <= Duration::from_micros(200)),
            other => panic!("expected backoff, got {other:?}"),
        }
        assert_eq!(m.state(), SensorMacState::Backoff);
        // Conditions still hold after backoff: transmit a burst of 5.
        let a = m.backoff_expired(signal(ChannelState::Idle, 30.0), 20.0, 5, false);
        assert_eq!(a, SensorAction::StartTransmission { burst_size: 5 });
        assert_eq!(m.state(), SensorMacState::Transmitting);
        assert_eq!(m.pending_burst(), 5);
        // Finish with 0 packets left: sleep.
        assert_eq!(m.burst_complete(0), SensorAction::EnterSleep);
        assert_eq!(m.state(), SensorMacState::Sleep);
        assert_eq!(m.stats().bursts_completed, 1);
    }

    #[test]
    fn burst_size_capped_at_eight() {
        let mut m = mac(3);
        m.packets_pending(20);
        m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 20, false);
        let a = m.backoff_expired(signal(ChannelState::Idle, 30.0), 20.0, 20, false);
        assert_eq!(a, SensorAction::StartTransmission { burst_size: 8 });
    }

    #[test]
    fn low_csi_defers_transmission() {
        let mut m = mac(4);
        m.packets_pending(5);
        let a = m.observe_tone(signal(ChannelState::Idle, 10.0), 20.0, 5, false);
        assert_eq!(a, SensorAction::None);
        assert_eq!(m.state(), SensorMacState::Sensing);
        assert_eq!(m.stats().deferred_low_csi, 1);
    }

    #[test]
    fn busy_channel_defers_transmission() {
        let mut m = mac(5);
        m.packets_pending(5);
        let a = m.observe_tone(signal(ChannelState::Receive, 30.0), 20.0, 5, false);
        assert_eq!(a, SensorAction::None);
        assert_eq!(m.stats().deferred_busy, 1);
        let a = m.observe_tone(signal(ChannelState::Collision, 30.0), 20.0, 5, false);
        assert_eq!(a, SensorAction::None);
        assert_eq!(m.stats().deferred_busy, 2);
    }

    #[test]
    fn below_min_burst_waits_unless_urgent() {
        let mut m = mac(6);
        m.packets_pending(2);
        let a = m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 2, false);
        assert_eq!(a, SensorAction::None);
        // Urgent (queue pressure) waives the 3-packet minimum.
        let a = m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 2, true);
        assert!(matches!(a, SensorAction::StartBackoff(_)));
    }

    #[test]
    fn conditions_rechecked_after_backoff() {
        let mut m = mac(7);
        m.packets_pending(5);
        m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 5, false);
        // Channel deteriorated during the backoff: back to sensing.
        let a = m.backoff_expired(signal(ChannelState::Idle, 12.0), 20.0, 5, false);
        assert_eq!(a, SensorAction::None);
        assert_eq!(m.state(), SensorMacState::Sensing);
        // Channel became busy during the backoff.
        m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 5, false);
        let a = m.backoff_expired(signal(ChannelState::Receive, 30.0), 20.0, 5, false);
        assert_eq!(a, SensorAction::None);
        assert_eq!(m.state(), SensorMacState::Sensing);
    }

    #[test]
    fn collision_aborts_and_eventually_abandons() {
        let mut m = mac(8);
        let reach_tx = |m: &mut SensorMac| {
            m.packets_pending(5);
            m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 5, false);
            let a = m.backoff_expired(signal(ChannelState::Idle, 30.0), 20.0, 5, false);
            assert!(matches!(a, SensorAction::StartTransmission { .. }));
        };
        // Six collisions are retriable, the seventh abandons the packet.
        for i in 1..=7 {
            reach_tx(&mut m);
            let (action, may_retry) = m.collision_detected();
            assert_eq!(action, SensorAction::AbortTransmission);
            if i <= 6 {
                assert!(may_retry, "collision {i} should allow a retry");
            } else {
                assert!(!may_retry, "collision 7 should abandon the packet");
            }
            assert_eq!(m.state(), SensorMacState::Sensing);
        }
        assert_eq!(m.stats().bursts_aborted, 7);
        assert_eq!(m.stats().packets_abandoned, 1);
        // Retry counter reset after abandonment.
        assert_eq!(m.retries(), 0);
    }

    #[test]
    fn csi_is_not_derived_when_channel_is_busy_or_burst_too_small() {
        let mut m = mac(20);
        m.packets_pending(5);
        // Busy channel: the CSI closure must not run.
        let a = m.observe_tone_lazy(
            Some(ChannelState::Receive),
            || panic!("CSI derived for a busy channel"),
            20.0,
            5,
            false,
        );
        assert_eq!(a, SensorAction::None);
        assert_eq!(m.stats().deferred_busy, 1);
        // Below the burst minimum and not urgent: also no CSI derivation.
        let a = m.observe_tone_lazy(
            Some(ChannelState::Idle),
            || panic!("CSI derived below the burst minimum"),
            20.0,
            2,
            false,
        );
        assert_eq!(a, SensorAction::None);
        // Idle channel with a full burst: now the CSI is consulted.
        let a = m.observe_tone_lazy(Some(ChannelState::Idle), || 30.0, 20.0, 5, false);
        assert!(matches!(a, SensorAction::StartBackoff(_)));
    }

    #[test]
    fn tone_loss_sends_node_to_sleep() {
        let mut m = mac(9);
        m.packets_pending(5);
        assert_eq!(
            m.observe_tone(None, 20.0, 5, false),
            SensorAction::EnterSleep
        );
        assert_eq!(m.state(), SensorMacState::Sleep);
        // Also from backoff.
        let mut m = mac(10);
        m.packets_pending(5);
        m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 5, false);
        assert_eq!(
            m.backoff_expired(None, 20.0, 5, false),
            SensorAction::EnterSleep
        );
    }

    #[test]
    fn burst_complete_with_backlog_keeps_sensing() {
        let mut m = mac(11);
        m.packets_pending(12);
        m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 12, false);
        m.backoff_expired(signal(ChannelState::Idle, 30.0), 20.0, 12, false);
        assert_eq!(m.burst_complete(4), SensorAction::StartSensing);
        assert_eq!(m.state(), SensorMacState::Sensing);
    }

    #[test]
    fn empty_queue_while_sensing_sleeps() {
        let mut m = mac(12);
        m.packets_pending(3);
        let a = m.observe_tone(signal(ChannelState::Idle, 30.0), 20.0, 0, false);
        assert_eq!(a, SensorAction::EnterSleep);
    }

    #[test]
    fn out_of_state_events_are_ignored() {
        let mut m = mac(13);
        // Not transmitting: collision is a no-op.
        assert_eq!(m.collision_detected(), (SensorAction::None, true));
        // Not in backoff: expiry is a no-op.
        assert_eq!(
            m.backoff_expired(signal(ChannelState::Idle, 30.0), 20.0, 5, false),
            SensorAction::None
        );
        // Not transmitting: completion is a no-op.
        assert_eq!(m.burst_complete(0), SensorAction::None);
        assert_eq!(m.state(), SensorMacState::Sleep);
    }
}
