//! Burst sizing: how many buffered packets one channel access may carry.
//!
//! Section IV: frequent data-radio start-ups waste considerable energy and
//! time (the RFM radio needs ~20 ms to wake), so the paper amortises each
//! start-up over a *burst* of packets: "the minimum number of packets sent
//! for one transmission is 3.  And to ensure fairness among sensor nodes,
//! the maximal number of packets sent per transmission is fixed at 8."

use serde::{Deserialize, Serialize};

/// Paper minimum burst size (packets per channel access).
pub const MIN_PACKETS_PER_BURST: usize = 3;
/// Paper maximum burst size (packets per channel access).
pub const MAX_PACKETS_PER_BURST: usize = 8;

/// Burst sizing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstPolicy {
    /// Minimum packets that must be queued before a transmission is worth a
    /// radio start-up.
    pub min_packets: usize,
    /// Maximum packets one access may drain (fairness cap).
    pub max_packets: usize,
}

impl Default for BurstPolicy {
    fn default() -> Self {
        BurstPolicy::paper_default()
    }
}

impl BurstPolicy {
    /// The paper's burst bounds: 3..=8 packets.
    pub fn paper_default() -> Self {
        BurstPolicy {
            min_packets: MIN_PACKETS_PER_BURST,
            max_packets: MAX_PACKETS_PER_BURST,
        }
    }

    /// Create a custom policy (used by the ablation bench).
    pub fn new(min_packets: usize, max_packets: usize) -> Self {
        assert!(min_packets >= 1, "burst minimum must be at least 1");
        assert!(
            max_packets >= min_packets,
            "burst maximum must be >= minimum"
        );
        BurstPolicy {
            min_packets,
            max_packets,
        }
    }

    /// Is a transmission worth starting with `queued` packets buffered?
    ///
    /// The minimum is waived when the node's buffer is under overflow
    /// pressure (`urgent`), e.g. the queue has reached the CAEM queue
    /// threshold — waiting for a third packet while dropping others would be
    /// self-defeating.
    pub fn should_transmit(&self, queued: usize, urgent: bool) -> bool {
        if queued == 0 {
            return false;
        }
        urgent || queued >= self.min_packets
    }

    /// How many packets the next burst should carry given `queued` waiting.
    pub fn burst_size(&self, queued: usize) -> usize {
        queued.min(self.max_packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = BurstPolicy::paper_default();
        assert_eq!(p.min_packets, 3);
        assert_eq!(p.max_packets, 8);
    }

    #[test]
    fn transmit_gate_respects_minimum() {
        let p = BurstPolicy::paper_default();
        assert!(!p.should_transmit(0, false));
        assert!(!p.should_transmit(1, false));
        assert!(!p.should_transmit(2, false));
        assert!(p.should_transmit(3, false));
        assert!(p.should_transmit(50, false));
    }

    #[test]
    fn urgent_waives_minimum_but_not_empty_queue() {
        let p = BurstPolicy::paper_default();
        assert!(p.should_transmit(1, true));
        assert!(p.should_transmit(2, true));
        assert!(!p.should_transmit(0, true));
    }

    #[test]
    fn burst_size_is_capped_at_maximum() {
        let p = BurstPolicy::paper_default();
        assert_eq!(p.burst_size(1), 1);
        assert_eq!(p.burst_size(5), 5);
        assert_eq!(p.burst_size(8), 8);
        assert_eq!(p.burst_size(9), 8);
        assert_eq!(p.burst_size(100), 8);
    }

    #[test]
    fn custom_policy_for_ablation() {
        let p = BurstPolicy::new(1, 16);
        assert!(p.should_transmit(1, false));
        assert_eq!(p.burst_size(20), 16);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_rejected() {
        BurstPolicy::new(5, 3);
    }

    #[test]
    #[should_panic]
    fn zero_minimum_rejected() {
        BurstPolicy::new(0, 3);
    }
}
