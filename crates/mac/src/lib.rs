//! # caem-mac
//!
//! Medium access control for CAEM: the tone signaling channel and the sensor
//! / cluster-head state machines of Section III-A/B.
//!
//! A sensor node has **two radios** working at different frequencies: a
//! low-power *tone* radio and the *data* radio.  The cluster head broadcasts
//! tone pulses whose inter-pulse interval encodes the current data-channel
//! state (idle / receive / collision, Table I).  A sensor that wants to send:
//!
//! 1. turns on its tone radio and monitors the tone channel ([`sensor`]);
//! 2. when it hears *idle* pulses it measures their SNR — the CSI of the
//!    (reciprocal) data channel — and compares it against the current
//!    transmission threshold;
//! 3. if the threshold is met it backs off a random time
//!    `rand[0,1) × 2^r × slot × CW` ([`backoff`]), re-checks both
//!    conditions, and only then turns the data radio on and transmits a burst
//!    of `3..=8` buffered packets ([`burst`]);
//! 4. the tone radio stays on during transmission, so a *collision* tone from
//!    the head aborts the burst immediately (collision **detection**, not
//!    just avoidance).
//!
//! The state machines are implemented as pure, synchronous transition
//! functions (inputs → actions), which keeps them unit-testable; the
//! event-driven orchestration lives in `caem-wsnsim`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod burst;
pub mod cluster_head;
pub mod sensor;
pub mod tone;

pub use backoff::{BackoffConfig, BackoffScheduler, MAX_RETRANSMISSIONS};
pub use burst::{BurstPolicy, MAX_PACKETS_PER_BURST, MIN_PACKETS_PER_BURST};
pub use cluster_head::{ClusterHeadAction, ClusterHeadMac, ClusterHeadState};
pub use sensor::{SensorAction, SensorMac, SensorMacConfig, SensorMacState};
pub use tone::{ChannelState, TonePulse, ToneSchedule, ToneSignal};
