//! Cluster-head MAC state machine (Fig. 4 of the paper).
//!
//! The cluster head owns the data channel of its cluster and advertises its
//! state on the tone channel:
//!
//! * **idle** — periodically broadcast idle tone pulses (1 ms every 50 ms);
//! * **receive** — on detecting an incoming packet burst, broadcast receive
//!   pulses (0.5 ms every 10 ms) so the sender can track the live CSI;
//! * **collision** — on detecting packet corruption (two or more senders),
//!   broadcast a single collision pulse, then return to idle once the channel
//!   recovers.
//!
//! As with [`crate::sensor::SensorMac`], this is a pure transition function;
//! the simulator drives it with detected events and schedules the tone
//! broadcasts it requests.

use serde::{Deserialize, Serialize};

use crate::tone::{ChannelState, ToneSchedule};

/// State of the cluster head's data channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterHeadState {
    /// Channel free; broadcasting idle pulses.
    Idle,
    /// Receiving a burst from exactly one sensor.
    Receiving,
    /// A collision was detected; the collision pulse is being sent.
    CollisionNotify,
    /// Forwarding aggregated data to the base station (defined by the paper
    /// but not exercised in its evaluation).
    Forwarding,
}

/// Action requested from the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterHeadAction {
    /// Nothing changes.
    None,
    /// Start (or restart) broadcasting the tone pattern for `state`.
    BroadcastTone(ChannelState),
    /// Stop the data radio receive chain (burst over or aborted).
    StopReceiving,
}

/// Statistics the cluster head accumulates, for the metrics crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterHeadStats {
    /// Bursts received to completion.
    pub bursts_received: u64,
    /// Collisions detected.
    pub collisions: u64,
    /// Individual packets received successfully.
    pub packets_received: u64,
    /// Packets lost to channel errors (corrupted but not a collision).
    pub packets_corrupted: u64,
}

/// The cluster-head MAC state machine.
#[derive(Debug, Clone)]
pub struct ClusterHeadMac {
    state: ClusterHeadState,
    schedule: ToneSchedule,
    stats: ClusterHeadStats,
    active_senders: u32,
}

impl ClusterHeadMac {
    /// Create a cluster head using the given tone schedule.
    pub fn new(schedule: ToneSchedule) -> Self {
        ClusterHeadMac {
            state: ClusterHeadState::Idle,
            schedule,
            stats: ClusterHeadStats::default(),
            active_senders: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ClusterHeadState {
        self.state
    }

    /// The tone schedule in use.
    pub fn schedule(&self) -> &ToneSchedule {
        &self.schedule
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ClusterHeadStats {
        self.stats
    }

    /// Number of sensors currently transmitting into this head.
    pub fn active_senders(&self) -> u32 {
        self.active_senders
    }

    /// The channel state to advertise on the tone channel right now.
    pub fn advertised_state(&self) -> ChannelState {
        match self.state {
            ClusterHeadState::Idle => ChannelState::Idle,
            ClusterHeadState::Receiving => ChannelState::Receive,
            ClusterHeadState::CollisionNotify => ChannelState::Collision,
            ClusterHeadState::Forwarding => ChannelState::Transmit,
        }
    }

    /// The head is (re-)activated at the start of a round: broadcast idle.
    pub fn activate(&mut self) -> ClusterHeadAction {
        self.state = ClusterHeadState::Idle;
        self.active_senders = 0;
        ClusterHeadAction::BroadcastTone(ChannelState::Idle)
    }

    /// A sensor started transmitting into this head.
    ///
    /// If the channel was idle the head moves to `Receiving` and switches the
    /// tone pattern.  If another sensor was already transmitting this is a
    /// collision: the head emits the collision pulse.
    pub fn transmission_started(&mut self) -> ClusterHeadAction {
        self.active_senders += 1;
        match self.state {
            ClusterHeadState::Idle => {
                self.state = ClusterHeadState::Receiving;
                ClusterHeadAction::BroadcastTone(ChannelState::Receive)
            }
            ClusterHeadState::Receiving => {
                // Second simultaneous sender ⇒ collision.
                self.state = ClusterHeadState::CollisionNotify;
                self.stats.collisions += 1;
                ClusterHeadAction::BroadcastTone(ChannelState::Collision)
            }
            ClusterHeadState::CollisionNotify => {
                // Already notifying; the new sender will hear it too.
                ClusterHeadAction::None
            }
            ClusterHeadState::Forwarding => {
                // Should not happen in the modelled scenario; treat as a
                // collision with the forward link.
                self.stats.collisions += 1;
                ClusterHeadAction::BroadcastTone(ChannelState::Collision)
            }
        }
    }

    /// A sensor stopped transmitting (either finished or aborted).
    ///
    /// `completed_packets` is how many packets of its burst arrived intact;
    /// `corrupted_packets` how many were received but failed the FEC check.
    pub fn transmission_ended(
        &mut self,
        completed_packets: u64,
        corrupted_packets: u64,
    ) -> ClusterHeadAction {
        self.active_senders = self.active_senders.saturating_sub(1);
        self.stats.packets_received += completed_packets;
        self.stats.packets_corrupted += corrupted_packets;
        match self.state {
            ClusterHeadState::Receiving => {
                if self.active_senders == 0 {
                    self.stats.bursts_received += 1;
                    self.state = ClusterHeadState::Idle;
                    ClusterHeadAction::BroadcastTone(ChannelState::Idle)
                } else {
                    ClusterHeadAction::None
                }
            }
            ClusterHeadState::CollisionNotify => {
                if self.active_senders == 0 {
                    // Channel recovered: back to idle pulses.
                    self.state = ClusterHeadState::Idle;
                    ClusterHeadAction::BroadcastTone(ChannelState::Idle)
                } else {
                    ClusterHeadAction::None
                }
            }
            _ => ClusterHeadAction::None,
        }
    }

    /// The head is deactivated (LEACH elected a different head, or it died):
    /// it stops broadcasting entirely, which the sensors detect as tone loss.
    pub fn deactivate(&mut self) -> ClusterHeadAction {
        self.state = ClusterHeadState::Idle;
        self.active_senders = 0;
        ClusterHeadAction::StopReceiving
    }
}

impl Default for ClusterHeadMac {
    fn default() -> Self {
        ClusterHeadMac::new(ToneSchedule::paper_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_broadcasts_idle() {
        let mut ch = ClusterHeadMac::default();
        assert_eq!(
            ch.activate(),
            ClusterHeadAction::BroadcastTone(ChannelState::Idle)
        );
        assert_eq!(ch.state(), ClusterHeadState::Idle);
        assert_eq!(ch.advertised_state(), ChannelState::Idle);
    }

    #[test]
    fn single_sender_receive_cycle() {
        let mut ch = ClusterHeadMac::default();
        ch.activate();
        assert_eq!(
            ch.transmission_started(),
            ClusterHeadAction::BroadcastTone(ChannelState::Receive)
        );
        assert_eq!(ch.state(), ClusterHeadState::Receiving);
        assert_eq!(ch.active_senders(), 1);
        assert_eq!(
            ch.transmission_ended(5, 0),
            ClusterHeadAction::BroadcastTone(ChannelState::Idle)
        );
        assert_eq!(ch.state(), ClusterHeadState::Idle);
        let s = ch.stats();
        assert_eq!(s.bursts_received, 1);
        assert_eq!(s.packets_received, 5);
        assert_eq!(s.collisions, 0);
    }

    #[test]
    fn two_senders_collide() {
        let mut ch = ClusterHeadMac::default();
        ch.activate();
        ch.transmission_started();
        assert_eq!(
            ch.transmission_started(),
            ClusterHeadAction::BroadcastTone(ChannelState::Collision)
        );
        assert_eq!(ch.state(), ClusterHeadState::CollisionNotify);
        assert_eq!(ch.advertised_state(), ChannelState::Collision);
        assert_eq!(ch.stats().collisions, 1);
        // A third sender arriving during the notification adds nothing new.
        assert_eq!(ch.transmission_started(), ClusterHeadAction::None);
        // All three back off; once the last stops, the head returns to idle.
        assert_eq!(ch.transmission_ended(0, 0), ClusterHeadAction::None);
        assert_eq!(ch.transmission_ended(0, 0), ClusterHeadAction::None);
        assert_eq!(
            ch.transmission_ended(0, 0),
            ClusterHeadAction::BroadcastTone(ChannelState::Idle)
        );
        assert_eq!(ch.state(), ClusterHeadState::Idle);
        // No burst is credited for a collision round.
        assert_eq!(ch.stats().bursts_received, 0);
    }

    #[test]
    fn corrupted_packets_are_counted_separately() {
        let mut ch = ClusterHeadMac::default();
        ch.activate();
        ch.transmission_started();
        ch.transmission_ended(3, 2);
        let s = ch.stats();
        assert_eq!(s.packets_received, 3);
        assert_eq!(s.packets_corrupted, 2);
    }

    #[test]
    fn deactivation_silences_the_tone_channel() {
        let mut ch = ClusterHeadMac::default();
        ch.activate();
        ch.transmission_started();
        assert_eq!(ch.deactivate(), ClusterHeadAction::StopReceiving);
        assert_eq!(ch.active_senders(), 0);
        assert_eq!(ch.state(), ClusterHeadState::Idle);
    }

    #[test]
    fn ending_without_start_is_harmless() {
        let mut ch = ClusterHeadMac::default();
        ch.activate();
        assert_eq!(ch.transmission_ended(0, 0), ClusterHeadAction::None);
        assert_eq!(ch.active_senders(), 0);
    }

    #[test]
    fn advertised_state_covers_all_head_states() {
        let mut ch = ClusterHeadMac::default();
        ch.activate();
        assert_eq!(ch.advertised_state(), ChannelState::Idle);
        ch.transmission_started();
        assert_eq!(ch.advertised_state(), ChannelState::Receive);
        ch.transmission_started();
        assert_eq!(ch.advertised_state(), ChannelState::Collision);
    }
}
