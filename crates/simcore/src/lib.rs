//! # caem-simcore
//!
//! Deterministic discrete-event simulation (DES) substrate used by every other
//! crate in the CAEM reproduction suite.
//!
//! The original paper ("On Channel Adaptive Energy Management in Wireless
//! Sensor Networks", Lin & Kwok, ICPPW 2005) evaluates CAEM with an ad-hoc
//! event-driven simulator that is not publicly available.  This crate rebuilds
//! that substrate from scratch:
//!
//! * [`SimTime`] / [`Duration`] — fixed-point virtual time (nanosecond
//!   resolution) so event ordering is exact and platform independent.
//! * [`EventQueue`] — a binary-heap pending-event set with FIFO tie-breaking
//!   for simultaneous events.
//! * [`Simulator`] — the event loop: schedule closures or typed events, run
//!   until a deadline or until the queue drains.
//! * [`rng`] — splittable, seedable random-number streams so every stochastic
//!   component (traffic, shadowing, fading, LEACH election, backoff) draws
//!   from an independent, reproducible stream.
//! * [`stats`] — running statistics (Welford), time-weighted averages,
//!   histograms and time series used by the metrics crate.
//!
//! # Example
//!
//! ```
//! use caem_simcore::{Simulator, SimTime, Duration};
//!
//! let mut sim = Simulator::new();
//! let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
//! let l2 = log.clone();
//! sim.schedule_in(Duration::from_millis(5), move |ctx| {
//!     l2.borrow_mut().push(ctx.now());
//! });
//! sim.run();
//! assert_eq!(log.borrow()[0], SimTime::from_millis(5));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{ScheduleHandle, SimContext, Simulator};
pub use event::{Event, EventQueue, ScheduledEvent};
pub use rng::{RngStream, StreamId, StreamRng};
pub use stats::{Histogram, RunningStats, TimeSeries, TimeWeighted};
pub use time::{Duration, SimTime};
