//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component of the simulation (Poisson traffic per node,
//! shadowing per link, microscopic fading per link, LEACH cluster-head
//! election, MAC backoff, packet error draws, ...) gets its own stream derived
//! from a single master seed.  This gives two properties the paper's
//! evaluation methodology implicitly relies on:
//!
//! 1. **Reproducibility** — the same scenario seed always produces the same
//!    channel realization and traffic trace, so protocol comparisons are
//!    paired (common random numbers) and figures are regenerable bit-for-bit.
//! 2. **Independence across components** — changing how often one component
//!    draws (e.g. a different MAC backoff policy) does not perturb the random
//!    sequence seen by another (e.g. the fading process), which would
//!    otherwise confound comparisons between CAEM schemes.
//!
//! The generator is a small, self-contained xoshiro256**-style PRNG seeded
//! through SplitMix64, exposed through `rand::RngCore` so the `rand_distr`
//! samplers can be used on top.

use rand::{Error, RngCore, SeedableRng};

/// Identifies an independent random stream: a component label plus an index
/// (node id, link id, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    /// Component label; use distinct constants per subsystem.
    pub component: u64,
    /// Entity index within the component (node id, link id, replication id).
    pub index: u64,
}

impl StreamId {
    /// Create a stream identifier.
    pub const fn new(component: u64, index: u64) -> Self {
        StreamId { component, index }
    }
}

/// Well-known component labels used across the suite.
pub mod components {
    /// Traffic generation (Poisson arrivals).
    pub const TRAFFIC: u64 = 0x01;
    /// Log-normal shadowing processes.
    pub const SHADOWING: u64 = 0x02;
    /// Microscopic (Rayleigh) fading processes.
    pub const FADING: u64 = 0x03;
    /// LEACH cluster-head election.
    pub const ELECTION: u64 = 0x04;
    /// MAC contention backoff.
    pub const BACKOFF: u64 = 0x05;
    /// Packet error / corruption draws.
    pub const PACKET_ERROR: u64 = 0x06;
    /// Node placement in the field.
    pub const PLACEMENT: u64 = 0x07;
    /// Per-node heterogeneity draws (initial-energy spread).
    pub const HETEROGENEITY: u64 = 0x08;
    /// Node-failure / churn injection times.
    pub const CHURN: u64 = 0x09;
    /// Anything else / scratch.
    pub const MISC: u64 = 0xFF;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256**-style PRNG with SplitMix64 seeding.
///
/// Small (32 bytes of state plus one cached normal), fast, and of more than
/// adequate statistical quality for protocol simulation.  Not
/// cryptographically secure.
#[derive(Debug, Clone)]
pub struct StreamRng {
    s: [u64; 4],
    /// Second output of the last Marsaglia polar iteration, kept for the next
    /// [`StreamRng::standard_normal`] call.  The polar transform produces two
    /// independent standard normals per accepted `(u, v)` pair; the shadowing
    /// and fading processes draw normals in bulk, so discarding the partner
    /// sample (as the original implementation did) doubled the number of
    /// rejection loops, `ln` and `sqrt` calls on the simulator's hottest path.
    spare_normal: Option<f64>,
}

impl StreamRng {
    /// Seed directly from a 64-bit value.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Avoid the all-zero state (probability ~2^-256, but be explicit).
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StreamRng {
            s,
            spare_normal: None,
        }
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection.
    pub fn uniform_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "uniform_u64 requires n > 0");
        // Simple modulo with rejection of the biased tail.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_raw();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed sample with the given rate (events/second).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        self.exponential_mean(1.0 / rate)
    }

    /// Exponentially distributed sample expressed via its mean (`1/rate`).
    ///
    /// Sources that draw at a fixed rate (every Poisson arrival) precompute
    /// the mean once, turning the per-draw division into a multiplication.
    pub fn exponential_mean(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.next_f64();
        -u.ln() * mean
    }

    /// Standard normal sample (Marsaglia polar method, both outputs used).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Marsaglia polar method avoids trig calls and yields an independent
        // pair per accepted iteration; the partner is cached for the next call.
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for StreamRng {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        StreamRng::from_seed_u64(u64::from_le_bytes(seed))
    }
    fn seed_from_u64(state: u64) -> Self {
        StreamRng::from_seed_u64(state)
    }
}

/// Factory for independent per-component random streams derived from a master
/// seed.
#[derive(Debug, Clone, Copy)]
pub struct RngStream {
    master_seed: u64,
}

impl RngStream {
    /// Create a stream factory from the scenario master seed.
    pub const fn new(master_seed: u64) -> Self {
        RngStream { master_seed }
    }

    /// The master seed this factory was built from.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the generator for `stream`.
    ///
    /// Derivation hashes `(master_seed, component, index)` through SplitMix64
    /// so neighbouring indices produce decorrelated states.
    pub fn stream(&self, stream: StreamId) -> StreamRng {
        let mut state = self
            .master_seed
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(stream.component.wrapping_mul(0x9FB2_1C65_1E98_DF25))
            .wrapping_add(stream.index.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        // Mix a few rounds so low-entropy inputs (small ints) spread out.
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        StreamRng::from_seed_u64(a ^ b.rotate_left(31))
    }

    /// Shorthand: derive the stream for `(component, index)`.
    pub fn derive(&self, component: u64, index: u64) -> StreamRng {
        self.stream(StreamId::new(component, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_same_seed() {
        let mut a = StreamRng::from_seed_u64(42);
        let mut b = StreamRng::from_seed_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StreamRng::from_seed_u64(1);
        let mut b = StreamRng::from_seed_u64(2);
        let same = (0..100).filter(|_| a.next_raw() == b.next_raw()).count();
        assert!(same < 3, "streams with different seeds should not collide");
    }

    #[test]
    fn streams_are_independent_of_component() {
        let factory = RngStream::new(7);
        let mut traffic = factory.derive(components::TRAFFIC, 3);
        let mut fading = factory.derive(components::FADING, 3);
        let same = (0..100)
            .filter(|_| traffic.next_raw() == fading.next_raw())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn adjacent_indices_are_decorrelated() {
        let factory = RngStream::new(1234);
        let mut x: Vec<f64> = Vec::new();
        let mut y: Vec<f64> = Vec::new();
        let mut a = factory.derive(components::TRAFFIC, 10);
        let mut b = factory.derive(components::TRAFFIC, 11);
        for _ in 0..2000 {
            x.push(a.next_f64());
            y.push(b.next_f64());
        }
        let mx = x.iter().sum::<f64>() / x.len() as f64;
        let my = y.iter().sum::<f64>() / y.len() as f64;
        let cov: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - mx) * (b - my))
            .sum::<f64>()
            / x.len() as f64;
        let vx = x.iter().map(|a| (a - mx).powi(2)).sum::<f64>() / x.len() as f64;
        let vy = y.iter().map(|b| (b - my).powi(2)).sum::<f64>() / y.len() as f64;
        let corr = cov / (vx * vy).sqrt();
        assert!(corr.abs() < 0.1, "correlation too high: {corr}");
    }

    #[test]
    fn uniform_f64_is_in_range_and_roughly_uniform() {
        let mut rng = StreamRng::from_seed_u64(5);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn uniform_u64_covers_all_values() {
        let mut rng = StreamRng::from_seed_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.uniform_u64(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn uniform_u64_zero_panics() {
        let mut rng = StreamRng::from_seed_u64(9);
        rng.uniform_u64(0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StreamRng::from_seed_u64(11);
        let rate = 5.0; // packets per second, as in Fig. 8/9
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StreamRng::from_seed_u64(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1);
        assert!((var - 9.0).abs() < 0.5);
    }

    #[test]
    fn bernoulli_probability() {
        let mut rng = StreamRng::from_seed_u64(17);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.05)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.05).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        let mut rng = StreamRng::from_seed_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert_eq!(rng.next_u32() as u64 >> 32, 0);
    }

    #[test]
    fn seedable_rng_trait() {
        let a = StreamRng::seed_from_u64(99);
        let b = StreamRng::from_seed(99u64.to_le_bytes());
        let mut a = a;
        let mut b = b;
        assert_eq!(a.next_raw(), b.next_raw());
    }
}
