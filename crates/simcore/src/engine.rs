//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns a virtual clock and a pending-event set of boxed
//! closures.  Protocol crates that prefer typed event enums can instead embed
//! an [`crate::EventQueue`] directly; the closure-based engine is the
//! convenient general-purpose driver used by the network simulator and the
//! examples.

use crate::event::EventQueue;
use crate::time::{Duration, SimTime};

/// A callback scheduled on the simulator.
pub type EventFn = Box<dyn FnOnce(&mut SimContext)>;

/// Unique identifier of a scheduled callback, usable for cancellation.
///
/// A handle is a *generation-stamped* slot reference: `slot` indexes a small
/// arena of callback states and `generation` guards against slot reuse.  Both
/// cancellation and the liveness check at pop time are O(1), and the arena
/// never grows beyond the peak number of concurrently pending callbacks —
/// unlike the previous design, which kept a `Vec<ScheduleHandle>` of
/// cancellations that was scanned linearly at every pop and grew without
/// bound when handles were cancelled after firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScheduleHandle {
    slot: u32,
    /// 64-bit generations make ABA reuse unreachable in practice: a slot
    /// would need 2^64 retirements before a stale handle could alias a live
    /// callback (u32 would wrap within minutes at benchmark event rates).
    generation: u64,
}

struct Entry {
    handle: ScheduleHandle,
    callback: EventFn,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("handle", &self.handle)
            .finish()
    }
}

/// Context handed to every callback: the current time plus the ability to
/// schedule further events.
#[derive(Debug)]
pub struct SimContext {
    now: SimTime,
    pending: Vec<(SimTime, Entry)>,
    /// Current generation of each slot.  A pending callback whose stamped
    /// generation no longer matches has been cancelled (or already fired).
    slot_generations: Vec<u64>,
    /// Slots whose callback fired or was cancelled, available for reuse.
    free_slots: Vec<u32>,
    stop_requested: bool,
}

impl SimContext {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `callback` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the callback runs at the
    /// current instant, after all callbacks already pending for this instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        let at = at.max(self.now);
        let slot = match self.free_slots.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slot_generations.len())
                    .expect("more than u32::MAX concurrently pending callbacks");
                self.slot_generations.push(0);
                slot
            }
        };
        let handle = ScheduleHandle {
            slot,
            generation: self.slot_generations[slot as usize],
        };
        self.pending.push((
            at,
            Entry {
                handle,
                callback: Box::new(callback),
            },
        ));
        handle
    }

    /// Schedule `callback` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: Duration, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        self.schedule_at(self.now + delay, callback)
    }

    /// Cancel a previously scheduled callback in O(1).  Cancelling an
    /// already-fired or already-cancelled handle is a no-op.
    pub fn cancel(&mut self, handle: ScheduleHandle) {
        if self
            .slot_generations
            .get(handle.slot as usize)
            .is_some_and(|&generation| generation == handle.generation)
        {
            self.retire_slot(handle.slot);
        }
    }

    /// Invalidate a slot (bumping its generation) and queue it for reuse.
    fn retire_slot(&mut self, slot: u32) {
        self.slot_generations[slot as usize] = self.slot_generations[slot as usize].wrapping_add(1);
        self.free_slots.push(slot);
    }

    /// Is the callback identified by `handle` still scheduled to run?
    fn is_live(&self, handle: ScheduleHandle) -> bool {
        self.slot_generations[handle.slot as usize] == handle.generation
    }

    /// Ask the simulator to stop after the current callback returns.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    queue: EventQueue<Entry>,
    ctx: SimContext,
    processed: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.ctx.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl Simulator {
    /// Create a simulator with the clock at `t = 0`.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            ctx: SimContext {
                now: SimTime::ZERO,
                pending: Vec::new(),
                slot_generations: Vec::new(),
                free_slots: Vec::new(),
                stop_requested: false,
            },
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Number of callbacks executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of callbacks currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.ctx.pending.len()
    }

    /// Schedule a callback at an absolute time.
    pub fn schedule_at<F>(&mut self, at: SimTime, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        let handle = self.ctx.schedule_at(at, callback);
        self.drain_context();
        handle
    }

    /// Schedule a callback after a delay relative to the current time.
    pub fn schedule_in<F>(&mut self, delay: Duration, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        let handle = self.ctx.schedule_in(delay, callback);
        self.drain_context();
        handle
    }

    /// Cancel a previously scheduled callback.
    pub fn cancel(&mut self, handle: ScheduleHandle) {
        self.ctx.cancel(handle);
    }

    fn drain_context(&mut self) {
        for (at, entry) in self.ctx.pending.drain(..) {
            self.queue.push(at, entry);
        }
    }

    /// Run until the pending-event set is empty.  Returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the clock would pass `deadline` or the queue drains.
    ///
    /// Events scheduled exactly at `deadline` *are* executed.  On return the
    /// clock reads `min(deadline, time of last executed event)`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            if self.ctx.stop_requested {
                self.ctx.stop_requested = false;
                break;
            }
            let Some(scheduled) = self.queue.pop_if_at_or_before(deadline) else {
                break;
            };
            debug_assert!(scheduled.time >= self.ctx.now, "time must not go backwards");
            // O(1) liveness check: a cancelled handle's slot generation no
            // longer matches the one stamped into the entry.
            if !self.ctx.is_live(scheduled.event.handle) {
                continue;
            }
            // Consuming the callback retires its slot for reuse; a later
            // `cancel` of this handle sees a stale generation and is a no-op,
            // so fired handles never accumulate anywhere.
            self.ctx.retire_slot(scheduled.event.handle.slot);
            self.ctx.now = scheduled.time;
            (scheduled.event.callback)(&mut self.ctx);
            self.processed += 1;
            self.drain_context();
        }
        self.ctx.now
    }

    /// Run for `span` of virtual time starting from the current clock.
    pub fn run_for(&mut self, span: Duration) -> SimTime {
        let deadline = self.ctx.now + span;
        self.run_until(deadline)
    }

    /// Size of the cancellation slot arena (test instrumentation: bounded by
    /// the peak number of concurrently pending callbacks, not by history).
    #[cfg(test)]
    fn slot_arena_size(&self) -> usize {
        self.ctx.slot_generations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (label, ms) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let order = order.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |_| {
                order.borrow_mut().push(label);
            });
        }
        let end = sim.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(end, SimTime::from_millis(30));
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn callbacks_can_schedule_more_events() {
        let mut sim = Simulator::new();
        let count = Rc::new(RefCell::new(0u32));
        fn tick(ctx: &mut SimContext, count: Rc<RefCell<u32>>, remaining: u32) {
            *count.borrow_mut() += 1;
            if remaining > 0 {
                let c = count.clone();
                ctx.schedule_in(Duration::from_millis(10), move |ctx| {
                    tick(ctx, c, remaining - 1)
                });
            }
        }
        let c = count.clone();
        sim.schedule_at(SimTime::ZERO, move |ctx| tick(ctx, c, 4));
        let end = sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(end, SimTime::from_millis(40));
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        for ms in [10u64, 20, 30, 40] {
            let hits = hits.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |ctx| {
                hits.borrow_mut().push(ctx.now());
            });
        }
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(hits.borrow().len(), 2);
        // Remaining events still pending and run later.
        sim.run();
        assert_eq!(hits.borrow().len(), 4);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulator::new();
        let seen = Rc::new(RefCell::new(None));
        let s = seen.clone();
        sim.schedule_at(SimTime::from_millis(100), move |ctx| {
            let s2 = s.clone();
            // "In the past" relative to now=100ms.
            ctx.schedule_at(SimTime::from_millis(10), move |ctx| {
                *s2.borrow_mut() = Some(ctx.now());
            });
        });
        sim.run();
        assert_eq!(*seen.borrow(), Some(SimTime::from_millis(100)));
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sim = Simulator::new();
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let handle = sim.schedule_at(SimTime::from_millis(5), move |_| {
            *f.borrow_mut() = true;
        });
        sim.cancel(handle);
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.processed(), 0);
    }

    #[test]
    fn cancelling_after_firing_is_a_noop_and_does_not_leak() {
        let mut sim = Simulator::new();
        let count = Rc::new(RefCell::new(0u32));
        let mut handles = Vec::new();
        for ms in 1..=100u64 {
            let count = count.clone();
            handles.push(sim.schedule_at(SimTime::from_millis(ms), move |_| {
                *count.borrow_mut() += 1;
            }));
        }
        sim.run();
        assert_eq!(*count.borrow(), 100);
        // Cancelling fired handles must not affect anything (the old design
        // accumulated these in an unbounded scan list).
        for h in handles {
            sim.cancel(h);
        }
        let c2 = count.clone();
        sim.schedule_at(SimTime::from_millis(200), move |_| {
            *c2.borrow_mut() += 1;
        });
        sim.run();
        assert_eq!(*count.borrow(), 101);
    }

    #[test]
    fn slot_arena_is_bounded_by_peak_pending_not_history() {
        let mut sim = Simulator::new();
        // Schedule and run 10_000 sequential callbacks, never more than a
        // handful pending at once.
        for batch in 0..1000u64 {
            for i in 0..10u64 {
                sim.schedule_at(SimTime::from_millis(batch * 10 + i + 1), |_| {});
            }
            sim.run();
        }
        assert_eq!(sim.processed(), 10_000);
        assert!(
            sim.slot_arena_size() <= 16,
            "arena grew to {} slots for a peak of 10 pending",
            sim.slot_arena_size()
        );
    }

    #[test]
    fn stale_handle_does_not_cancel_slot_reuser() {
        let mut sim = Simulator::new();
        let fired = Rc::new(RefCell::new(Vec::new()));
        let f1 = fired.clone();
        let h1 = sim.schedule_at(SimTime::from_millis(1), move |_| {
            f1.borrow_mut().push("a");
        });
        sim.cancel(h1); // frees the slot for reuse
        let f2 = fired.clone();
        let _h2 = sim.schedule_at(SimTime::from_millis(2), move |_| {
            f2.borrow_mut().push("b");
        });
        // h1 is stale (its slot was re-stamped); cancelling it again must not
        // kill the new callback occupying the same slot.
        sim.cancel(h1);
        sim.run();
        assert_eq!(*fired.borrow(), vec!["b"]);
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim = Simulator::new();
        let count = Rc::new(RefCell::new(0));
        for ms in 1..=10u64 {
            let count = count.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |ctx| {
                *count.borrow_mut() += 1;
                if ctx.now() == SimTime::from_millis(3) {
                    ctx.stop();
                }
            });
        }
        sim.run();
        assert_eq!(*count.borrow(), 3);
        // A second run resumes from where we stopped.
        sim.run();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn run_for_advances_relative_span() {
        let mut sim = Simulator::new();
        let n = Rc::new(RefCell::new(0));
        for s in 1..=5u64 {
            let n = n.clone();
            sim.schedule_at(SimTime::from_secs(s), move |_| *n.borrow_mut() += 1);
        }
        sim.run_for(Duration::from_secs(2));
        assert_eq!(*n.borrow(), 2);
        sim.run_for(Duration::from_secs(2));
        assert_eq!(*n.borrow(), 4);
    }

    #[test]
    fn pending_counts() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), |_| {});
        sim.schedule_at(SimTime::from_secs(2), |_| {});
        assert_eq!(sim.pending(), 2);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.pending(), 1);
    }
}
