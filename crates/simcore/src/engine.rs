//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns a virtual clock and a pending-event set of boxed
//! closures.  Protocol crates that prefer typed event enums can instead embed
//! an [`crate::EventQueue`] directly; the closure-based engine is the
//! convenient general-purpose driver used by the network simulator and the
//! examples.

use crate::event::EventQueue;
use crate::time::{Duration, SimTime};

/// A callback scheduled on the simulator.
pub type EventFn = Box<dyn FnOnce(&mut SimContext)>;

/// Unique identifier of a scheduled callback, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScheduleHandle(u64);

struct Entry {
    handle: ScheduleHandle,
    callback: EventFn,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry").field("handle", &self.handle).finish()
    }
}

/// Context handed to every callback: the current time plus the ability to
/// schedule further events.
#[derive(Debug)]
pub struct SimContext {
    now: SimTime,
    next_handle: u64,
    pending: Vec<(SimTime, Entry)>,
    cancelled: Vec<ScheduleHandle>,
    stop_requested: bool,
}

impl SimContext {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `callback` to run at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the callback runs at the
    /// current instant, after all callbacks already pending for this instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        let at = at.max(self.now);
        let handle = ScheduleHandle(self.next_handle);
        self.next_handle += 1;
        self.pending.push((
            at,
            Entry {
                handle,
                callback: Box::new(callback),
            },
        ));
        handle
    }

    /// Schedule `callback` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: Duration, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        self.schedule_at(self.now + delay, callback)
    }

    /// Cancel a previously scheduled callback.  Cancelling an already-fired
    /// or unknown handle is a no-op.
    pub fn cancel(&mut self, handle: ScheduleHandle) {
        self.cancelled.push(handle);
    }

    /// Ask the simulator to stop after the current callback returns.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    queue: EventQueue<Entry>,
    ctx: SimContext,
    processed: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.ctx.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl Simulator {
    /// Create a simulator with the clock at `t = 0`.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            ctx: SimContext {
                now: SimTime::ZERO,
                next_handle: 0,
                pending: Vec::new(),
                cancelled: Vec::new(),
                stop_requested: false,
            },
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Number of callbacks executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of callbacks currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.ctx.pending.len()
    }

    /// Schedule a callback at an absolute time.
    pub fn schedule_at<F>(&mut self, at: SimTime, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        let handle = self.ctx.schedule_at(at, callback);
        self.drain_context();
        handle
    }

    /// Schedule a callback after a delay relative to the current time.
    pub fn schedule_in<F>(&mut self, delay: Duration, callback: F) -> ScheduleHandle
    where
        F: FnOnce(&mut SimContext) + 'static,
    {
        let handle = self.ctx.schedule_in(delay, callback);
        self.drain_context();
        handle
    }

    /// Cancel a previously scheduled callback.
    pub fn cancel(&mut self, handle: ScheduleHandle) {
        self.ctx.cancel(handle);
    }

    fn drain_context(&mut self) {
        for (at, entry) in self.ctx.pending.drain(..) {
            self.queue.push(at, entry);
        }
    }

    /// Run until the pending-event set is empty.  Returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the clock would pass `deadline` or the queue drains.
    ///
    /// Events scheduled exactly at `deadline` *are* executed.  On return the
    /// clock reads `min(deadline, time of last executed event)`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            if self.ctx.stop_requested {
                self.ctx.stop_requested = false;
                break;
            }
            let Some(next_time) = self.queue.peek_time() else {
                break;
            };
            if next_time > deadline {
                break;
            }
            let scheduled = self.queue.pop().expect("peeked event must exist");
            debug_assert!(scheduled.time >= self.ctx.now, "time must not go backwards");
            // Cancelled?
            if let Some(pos) = self
                .ctx
                .cancelled
                .iter()
                .position(|h| *h == scheduled.event.handle)
            {
                self.ctx.cancelled.swap_remove(pos);
                continue;
            }
            self.ctx.now = scheduled.time;
            (scheduled.event.callback)(&mut self.ctx);
            self.processed += 1;
            self.drain_context();
        }
        self.ctx.now
    }

    /// Run for `span` of virtual time starting from the current clock.
    pub fn run_for(&mut self, span: Duration) -> SimTime {
        let deadline = self.ctx.now + span;
        self.run_until(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (label, ms) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let order = order.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |_| {
                order.borrow_mut().push(label);
            });
        }
        let end = sim.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(end, SimTime::from_millis(30));
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn callbacks_can_schedule_more_events() {
        let mut sim = Simulator::new();
        let count = Rc::new(RefCell::new(0u32));
        fn tick(ctx: &mut SimContext, count: Rc<RefCell<u32>>, remaining: u32) {
            *count.borrow_mut() += 1;
            if remaining > 0 {
                let c = count.clone();
                ctx.schedule_in(Duration::from_millis(10), move |ctx| {
                    tick(ctx, c, remaining - 1)
                });
            }
        }
        let c = count.clone();
        sim.schedule_at(SimTime::ZERO, move |ctx| tick(ctx, c, 4));
        let end = sim.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(end, SimTime::from_millis(40));
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut sim = Simulator::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        for ms in [10u64, 20, 30, 40] {
            let hits = hits.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |ctx| {
                hits.borrow_mut().push(ctx.now());
            });
        }
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(hits.borrow().len(), 2);
        // Remaining events still pending and run later.
        sim.run();
        assert_eq!(hits.borrow().len(), 4);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulator::new();
        let seen = Rc::new(RefCell::new(None));
        let s = seen.clone();
        sim.schedule_at(SimTime::from_millis(100), move |ctx| {
            let s2 = s.clone();
            // "In the past" relative to now=100ms.
            ctx.schedule_at(SimTime::from_millis(10), move |ctx| {
                *s2.borrow_mut() = Some(ctx.now());
            });
        });
        sim.run();
        assert_eq!(*seen.borrow(), Some(SimTime::from_millis(100)));
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sim = Simulator::new();
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        let handle = sim.schedule_at(SimTime::from_millis(5), move |_| {
            *f.borrow_mut() = true;
        });
        sim.cancel(handle);
        sim.run();
        assert!(!*fired.borrow());
        assert_eq!(sim.processed(), 0);
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim = Simulator::new();
        let count = Rc::new(RefCell::new(0));
        for ms in 1..=10u64 {
            let count = count.clone();
            sim.schedule_at(SimTime::from_millis(ms), move |ctx| {
                *count.borrow_mut() += 1;
                if ctx.now() == SimTime::from_millis(3) {
                    ctx.stop();
                }
            });
        }
        sim.run();
        assert_eq!(*count.borrow(), 3);
        // A second run resumes from where we stopped.
        sim.run();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn run_for_advances_relative_span() {
        let mut sim = Simulator::new();
        let n = Rc::new(RefCell::new(0));
        for s in 1..=5u64 {
            let n = n.clone();
            sim.schedule_at(SimTime::from_secs(s), move |_| *n.borrow_mut() += 1);
        }
        sim.run_for(Duration::from_secs(2));
        assert_eq!(*n.borrow(), 2);
        sim.run_for(Duration::from_secs(2));
        assert_eq!(*n.borrow(), 4);
    }

    #[test]
    fn pending_counts() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), |_| {});
        sim.schedule_at(SimTime::from_secs(2), |_| {});
        assert_eq!(sim.pending(), 2);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.pending(), 1);
    }
}
