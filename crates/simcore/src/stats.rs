//! Statistics primitives shared by the metrics and benchmark crates.
//!
//! * [`RunningStats`] — single-pass mean / variance / min / max (Welford).
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant signal
//!   (e.g. queue length, remaining energy between samples).
//! * [`TimeSeries`] — ordered `(time, value)` samples with resampling helpers
//!   used to build the figure curves.
//! * [`Histogram`] — fixed-width bin histogram with quantile estimation used
//!   for packet-delay distributions.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Single-pass running statistics using Welford's algorithm.
///
/// `PartialEq` compares every accumulator field exactly (floats included),
/// which is what the experiment persistence layer's "bit-identical report"
/// guarantees are asserted against.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every value of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the 95 % confidence interval on the mean:
    /// `t₀.₉₇₅(n−1) · s / √n` with the Bessel-corrected sample deviation.
    ///
    /// Student-t critical values matter here: experiment cells aggregate a
    /// handful of seed replicates (3–12), where the normal approximation's
    /// 1.96 understates the interval by 15–120 %.  Zero with fewer than two
    /// observations — a single replicate carries no dispersion information.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let t = t_critical_975(self.count - 1);
        t * (self.sample_variance() / self.count as f64).sqrt()
    }

    /// The 95 % CI half-width as a fraction of the mean's magnitude — a
    /// scale-free precision readout ("±2 %" reads the same for a delivery
    /// rate near 1 and a delay in the hundreds of milliseconds).  Reported
    /// alongside the absolute half-width that sequential-stopping targets
    /// are expressed in.  `None` with fewer than two observations or a zero
    /// mean (relative precision is undefined there).
    pub fn ci95_relative_half_width(&self) -> Option<f64> {
        if self.count < 2 || self.mean == 0.0 {
            return None;
        }
        Some(self.ci95_half_width() / self.mean.abs())
    }

    /// Merge another accumulator into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 97.5 % Student-t critical value for `df` degrees of freedom
/// (the multiplier of a 95 % confidence interval).  Tabulated for the small
/// replicate counts experiments actually run; beyond 30 degrees of freedom
/// the distribution is within 2 % of the normal limit 1.96.
fn t_critical_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// `observe(t, v)` records that the signal takes value `v` *from* time `t`
/// until the next observation.  Used for queue lengths and channel-mode
/// occupancy, where the paper's metrics are time averages rather than
/// per-event averages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: Option<SimTime>,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
    max_value: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: None,
            last_value: 0.0,
            weighted_sum: 0.0,
            total_time: 0.0,
            max_value: f64::NEG_INFINITY,
        }
    }

    /// Record that the signal takes value `value` starting at `time`.
    ///
    /// Observations must be fed in non-decreasing time order.
    pub fn observe(&mut self, time: SimTime, value: f64) {
        if let Some(prev) = self.last_time {
            debug_assert!(time >= prev, "observations must be time-ordered");
            let dt = (time - prev).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
            self.total_time += dt;
        }
        self.last_time = Some(time);
        self.last_value = value;
        self.max_value = self.max_value.max(value);
    }

    /// Close the observation window at `time` (accounts the final segment).
    pub fn finish(&mut self, time: SimTime) {
        self.observe(time, self.last_value);
    }

    /// The time-weighted average over all closed segments.
    pub fn average(&self) -> f64 {
        if self.total_time <= 0.0 {
            self.last_value
        } else {
            self.weighted_sum / self.total_time
        }
    }

    /// The largest value observed.
    pub fn max(&self) -> Option<f64> {
        (self.max_value != f64::NEG_INFINITY).then_some(self.max_value)
    }

    /// Total observed span in seconds.
    pub fn span_secs(&self) -> f64 {
        self.total_time
    }
}

/// An ordered sequence of `(time, value)` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
    name: String,
}

impl TimeSeries {
    /// Create an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            samples: Vec::new(),
            name: name.into(),
        }
    }

    /// Series name (used as a column header in figure output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample; time is given in seconds.
    pub fn push(&mut self, time_secs: f64, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| time_secs >= t),
            "samples must be time-ordered"
        );
        self.samples.push((time_secs, value));
    }

    /// Append a sample with a [`SimTime`] timestamp.
    pub fn push_at(&mut self, time: SimTime, value: f64) {
        self.push(time.as_secs_f64(), value);
    }

    /// All samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.samples.last().copied()
    }

    /// Linearly interpolate the value at `time_secs`.
    ///
    /// Clamps to the first/last sample outside the observed range; returns
    /// `None` when the series is empty.
    pub fn value_at(&self, time_secs: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let first = self.samples[0];
        let last = *self.samples.last().unwrap();
        if time_secs <= first.0 {
            return Some(first.1);
        }
        if time_secs >= last.0 {
            return Some(last.1);
        }
        let idx = self
            .samples
            .partition_point(|&(t, _)| t <= time_secs)
            .saturating_sub(1);
        let (t0, v0) = self.samples[idx];
        let (t1, v1) = self.samples[idx + 1];
        if (t1 - t0).abs() < f64::EPSILON {
            return Some(v1);
        }
        let alpha = (time_secs - t0) / (t1 - t0);
        Some(v0 + alpha * (v1 - v0))
    }

    /// Resample at a fixed period, linearly interpolating.
    pub fn resample(&self, start: f64, end: f64, step: f64) -> Vec<(f64, f64)> {
        assert!(step > 0.0, "resample step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t <= end + 1e-9 {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            t += step;
        }
        out
    }

    /// The first time at which the series drops to or below `threshold`
    /// (the series is assumed to be non-increasing, e.g. remaining energy or
    /// nodes alive).  Returns `None` if it never does.
    pub fn first_time_below(&self, threshold: f64) -> Option<f64> {
        self.samples
            .iter()
            .find(|&&(_, v)| v <= threshold)
            .map(|&(t, _)| t)
    }
}

/// A fixed-count-bin histogram over `[lo, hi)` with overflow/underflow bins,
/// optionally **auto-resizing**: recording a value at or beyond `hi` doubles
/// the bin width (merging adjacent bin pairs; the bin count never changes)
/// until the value fits or the range reaches a configured growth cap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// Precomputed `bins / (hi - lo)`: `record` sits on the delivery hot path
    /// and a multiply is far cheaper than the two divisions it replaces.
    inv_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    /// The largest `hi` the range may grow to by doubling; equal to `hi` for
    /// a fixed-range histogram.
    max_hi: f64,
}

impl Histogram {
    /// Create a fixed-range histogram with `bins` equal-width bins spanning
    /// `[lo, hi)`.  Values at or beyond `hi` always land in the overflow bin.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        Self::with_auto_resize(lo, hi, bins, hi)
    }

    /// Create an auto-resizing histogram: when a value at or beyond the
    /// current `hi` is recorded, the bin width doubles (adjacent bin pairs
    /// merge, so the bin count and all already-recorded counts are preserved
    /// exactly) until the value fits or doubling again would push `hi` past
    /// `max_hi`.  Values beyond the cap still land in the overflow bin, so
    /// the [`Histogram::quantile`] `None` contract survives for truly
    /// unbounded observations while merely-saturated distributions stay
    /// quantifiable (at coarser resolution).
    ///
    /// The final bin layout depends only on the multiset of recorded values,
    /// not on their order: a value recorded before a doubling is merged into
    /// exactly the bin it would have landed in afterwards.
    pub fn with_auto_resize(lo: f64, hi: f64, bins: usize, max_hi: f64) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(max_hi >= hi, "growth cap must be at or beyond the range");
        Histogram {
            lo,
            hi,
            inv_width: bins as f64 / (hi - lo),
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            max_hi,
        }
    }

    /// Double the bin width (halving resolution) until `x < hi` or the next
    /// doubling would exceed the growth cap.  Bin `k` of the widened layout
    /// absorbs bins `2k` and `2k + 1` of the old one — exactly where a value
    /// recorded at the widened resolution would land, so resizing commutes
    /// with recording.
    fn grow_to_cover(&mut self, x: f64) {
        while x >= self.hi {
            let doubled_hi = self.lo + 2.0 * (self.hi - self.lo);
            if doubled_hi > self.max_hi {
                return; // at the cap: x stays an overflow observation
            }
            let n = self.bins.len();
            for k in 0..n {
                let merged = match (self.bins.get(2 * k), self.bins.get(2 * k + 1)) {
                    (Some(&a), Some(&b)) => a + b,
                    (Some(&a), None) => a,
                    _ => 0,
                };
                self.bins[k] = merged;
            }
            self.hi = doubled_hi;
            self.inv_width = n as f64 / (self.hi - self.lo);
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.grow_to_cover(x);
        }
        if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) * self.inv_width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// The current upper edge of the binned range (grows in an auto-resizing
    /// histogram; fixed otherwise).
    pub fn range_hi(&self) -> f64 {
        self.hi
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Number of underflowed / overflowed observations.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate quantile (0..=1) using within-bin linear interpolation.
    ///
    /// Returns `None` when the histogram is empty **or** when the requested
    /// quantile falls inside the overflow bin: observations at or above `hi`
    /// only record that they exceeded the range, so any in-range answer
    /// (previously `Some(hi)`) would silently understate the true value.
    /// Quantiles inside the underflow bin clamp to `lo` (an upper bound on
    /// the true value, which the delay metrics treat as "effectively zero").
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = self.underflow as f64;
        if cum >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        for (i, &b) in self.bins.iter().enumerate() {
            let next = cum + b as f64;
            if next >= target && b > 0 {
                let frac = (target - cum) / b as f64;
                return Some(self.lo + width * (i as f64 + frac));
            }
            cum = next;
        }
        // The target lands beyond all in-range mass, i.e. in the overflow
        // bin (or the histogram holds only outliers): the value is >= `hi`
        // but otherwise unknown.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(data.iter().copied());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(data[..37].iter().copied());
        b.extend(data[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 3);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_half_width_is_scale_free() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0, 3.0, 4.0]);
        let mut b = RunningStats::new();
        b.extend([100.0, 200.0, 300.0, 400.0]);
        let ra = a.ci95_relative_half_width().unwrap();
        let rb = b.ci95_relative_half_width().unwrap();
        assert!((ra - rb).abs() < 1e-12, "same shape ⇒ same relative CI");
        assert!((ra - a.ci95_half_width() / a.mean()).abs() < 1e-12);
        // Undefined cases: too few observations, zero mean.
        let mut single = RunningStats::new();
        single.push(5.0);
        assert_eq!(single.ci95_relative_half_width(), None);
        let mut zero_mean = RunningStats::new();
        zero_mean.extend([-1.0, 1.0]);
        assert_eq!(zero_mean.ci95_relative_half_width(), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        // Signal: 0 for 1s, then 10 for 3s => average = 30/4 = 7.5
        tw.observe(SimTime::ZERO, 0.0);
        tw.observe(SimTime::from_secs(1), 10.0);
        tw.finish(SimTime::from_secs(4));
        assert!((tw.average() - 7.5).abs() < 1e-9);
        assert_eq!(tw.max(), Some(10.0));
        assert!((tw.span_secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_empty_and_point() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.average(), 0.0);
        let mut tw = TimeWeighted::new();
        tw.observe(SimTime::from_secs(2), 5.0);
        // No elapsed time yet; average falls back to the last value.
        assert_eq!(tw.average(), 5.0);
    }

    #[test]
    fn time_series_interpolation() {
        let mut ts = TimeSeries::new("energy");
        ts.push(0.0, 10.0);
        ts.push(10.0, 5.0);
        ts.push(20.0, 0.0);
        assert_eq!(ts.value_at(-1.0), Some(10.0));
        assert_eq!(ts.value_at(25.0), Some(0.0));
        assert!((ts.value_at(5.0).unwrap() - 7.5).abs() < 1e-12);
        assert!((ts.value_at(15.0).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(ts.first_time_below(5.0), Some(10.0));
        assert_eq!(ts.first_time_below(-1.0), None);
        assert_eq!(ts.name(), "energy");
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.last(), Some((20.0, 0.0)));
    }

    #[test]
    fn time_series_resample() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 0.0);
        ts.push(4.0, 8.0);
        let r = ts.resample(0.0, 4.0, 1.0);
        assert_eq!(r.len(), 5);
        assert!((r[2].1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_value_is_none() {
        let ts = TimeSeries::new("empty");
        assert_eq!(ts.value_at(1.0), None);
        assert!(ts.is_empty());
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!(h.bins().iter().all(|&b| b == 10));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 10.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 90.0);
    }

    #[test]
    fn histogram_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-5.0);
        h.record(100.0);
        h.record(5.0);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_all_overflow_quantile_is_none() {
        // Regression: with every observation in the overflow bin, quantile
        // used to return Some(hi) — a silently wrong value for data known
        // only to be >= hi.
        let mut h = Histogram::new(0.0, 10.0, 5);
        for _ in 0..8 {
            h.record(1_000.0);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_quantile_inside_overflow_region_is_none() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..9 {
            h.record(i as f64); // 9 in-range observations
        }
        h.record(50.0); // 1 overflow
                        // The median is in range, the maximum is not.
        assert!(h.quantile(0.5).is_some());
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn auto_resize_doubles_range_and_preserves_counts() {
        let mut h = Histogram::with_auto_resize(0.0, 10.0, 10, 80.0);
        for i in 0..10 {
            h.record(i as f64); // one per bin
        }
        assert_eq!(h.range_hi(), 10.0);
        // A value at 35 forces two doublings: [0,10) -> [0,20) -> [0,40).
        h.record(35.0);
        assert_eq!(h.range_hi(), 40.0);
        assert_eq!(h.count(), 11);
        assert_eq!(h.outliers(), (0, 0), "35 fits after resizing");
        // The original ten observations survived the pair merges exactly.
        assert_eq!(h.bins().iter().sum::<u64>(), 11);
        assert_eq!(&h.bins()[..3], &[4, 4, 2], "0-3, 4-7, 8-9 per 4-wide bin");
        // Beyond the cap (next doubling would need hi = 160 > 80): overflow.
        h.record(100.0);
        assert_eq!(h.range_hi(), 80.0, "one last doubling to the cap");
        assert_eq!(h.outliers(), (0, 1));
        assert_eq!(h.quantile(1.0), None, "unbounded tail stays unknown");
    }

    #[test]
    fn auto_resize_is_record_order_independent() {
        let values = [1.0, 9.5, 35.0, 4.0, 19.0, 0.0, 39.9];
        let mut forward = Histogram::with_auto_resize(0.0, 10.0, 8, 640.0);
        let mut reverse = Histogram::with_auto_resize(0.0, 10.0, 8, 640.0);
        for &v in &values {
            forward.record(v);
        }
        for &v in values.iter().rev() {
            reverse.record(v);
        }
        assert_eq!(forward.range_hi(), reverse.range_hi());
        assert_eq!(forward.bins(), reverse.bins());
        assert_eq!(
            forward.quantile(0.99).map(f64::to_bits),
            reverse.quantile(0.99).map(f64::to_bits)
        );
    }

    #[test]
    fn saturated_distribution_reports_p99_after_resizing() {
        // Every observation beyond the initial range: a fixed histogram
        // would answer None for every quantile; the auto-resizing one
        // recovers the whole distribution at coarser resolution.
        let mut h = Histogram::with_auto_resize(0.0, 10.0, 100, 10_000.0);
        for i in 0..1000 {
            h.record(50.0 + (i % 100) as f64);
        }
        let p99 = h.quantile(0.99).expect("saturation stays quantifiable");
        assert!((p99 - 149.0).abs() < 10.0, "p99 {p99}");
        let fixed = {
            let mut f = Histogram::new(0.0, 10.0, 100);
            f.record(50.0);
            f
        };
        assert_eq!(
            fixed.quantile(0.99),
            None,
            "fixed range keeps the old contract"
        );
    }

    #[test]
    fn ci95_half_width_shrinks_with_replicates() {
        let mut few = RunningStats::new();
        few.extend([1.0, 2.0, 3.0, 4.0]);
        let mut many = RunningStats::new();
        for _ in 0..16 {
            many.extend([1.0, 2.0, 3.0, 4.0]);
        }
        assert!(few.ci95_half_width() > 0.0);
        // Same dispersion, 16x the observations: the half-width shrinks by
        // the 4x sample-size factor *and* the t(3)=3.182 → t(63)=1.96
        // critical-value drop.
        assert!(many.ci95_half_width() < few.ci95_half_width() / 3.5);
        // The small-n width uses the Student-t multiplier, not z = 1.96:
        // n = 4, s² = 5/3 ⇒ 3.182 · √(5/12).
        let expected_few = 3.182 * (few.sample_variance() / 4.0).sqrt();
        assert!((few.ci95_half_width() - expected_few).abs() < 1e-9);
        let mut single = RunningStats::new();
        single.push(7.0);
        assert_eq!(single.ci95_half_width(), 0.0);
    }
}
