//! Statistics primitives shared by the metrics and benchmark crates.
//!
//! * [`RunningStats`] — single-pass mean / variance / min / max (Welford).
//! * [`ConcurrentStats`] — lock-free sharded accumulator for the same
//!   moments, safe to feed from many threads without a mutex.
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant signal
//!   (e.g. queue length, remaining energy between samples).
//! * [`TimeSeries`] — ordered `(time, value)` samples with resampling helpers
//!   used to build the figure curves.
//! * [`Histogram`] — fixed-width bin histogram with quantile estimation used
//!   for packet-delay distributions.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Single-pass running statistics using Welford's algorithm.
///
/// `PartialEq` compares every accumulator field exactly (floats included),
/// which is what the experiment persistence layer's "bit-identical report"
/// guarantees are asserted against.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every value of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the 95 % confidence interval on the mean:
    /// `t₀.₉₇₅(n−1) · s / √n` with the Bessel-corrected sample deviation.
    ///
    /// Student-t critical values matter here: experiment cells aggregate a
    /// handful of seed replicates (3–12), where the normal approximation's
    /// 1.96 understates the interval by 15–120 %.  Zero with fewer than two
    /// observations — a single replicate carries no dispersion information.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let t = t_critical_975(self.count - 1);
        t * (self.sample_variance() / self.count as f64).sqrt()
    }

    /// The 95 % CI half-width as a fraction of the mean's magnitude — a
    /// scale-free precision readout ("±2 %" reads the same for a delivery
    /// rate near 1 and a delay in the hundreds of milliseconds).  Reported
    /// alongside the absolute half-width that sequential-stopping targets
    /// are expressed in.  `None` with fewer than two observations or a zero
    /// mean (relative precision is undefined there).
    pub fn ci95_relative_half_width(&self) -> Option<f64> {
        if self.count < 2 || self.mean == 0.0 {
            return None;
        }
        Some(self.ci95_half_width() / self.mean.abs())
    }

    /// Merge another accumulator into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 97.5 % Student-t critical value for `df` degrees of freedom
/// (the multiplier of a 95 % confidence interval).  Tabulated for the small
/// replicate counts experiments actually run; past 30 degrees of freedom the
/// tail approaches the normal limit through the standard 40/60/120
/// breakpoints, interpolated linearly in `1/df` (the variable the t quantile
/// is nearly linear in), so the value is continuous and strictly decreasing
/// everywhere.  The old implementation dropped straight from t(30) = 2.042
/// to 1.96 — a ~4 % step that made `ci95_half_width` non-monotone in the
/// replicate count right where sequential stopping compares widths.
fn t_critical_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    // Anchors past the table, ending at the deepest tabulated row (df 120);
    // interpolation runs on 1/df between consecutive anchors.
    const ANCHORS: [(f64, f64); 4] = [(30.0, 2.042), (40.0, 2.021), (60.0, 2.000), (120.0, 1.980)];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=120 => {
            let x = df as f64;
            let (lo, hi) = ANCHORS
                .windows(2)
                .map(|w| (w[0], w[1]))
                .find(|&((lo_df, _), (hi_df, _))| x >= lo_df && x <= hi_df)
                .expect("31..=120 is covered by the anchor spans");
            let alpha = (1.0 / x - 1.0 / lo.0) / (1.0 / hi.0 - 1.0 / lo.0);
            lo.1 + alpha * (hi.1 - lo.1)
        }
        // Beyond the table: decay the remaining 0.02 gap over 1.96 like
        // 1/df (t(120) = 1.98 exactly matches the last anchor), so the
        // curve stays continuous and monotone down to the normal limit.
        _ => 1.96 + 0.02 * (120.0 / df as f64),
    }
}

/// Lock-free concurrent counterpart of [`RunningStats`]: many threads feed
/// observations through `&self` without a mutex; a quiescent reader folds
/// the result back into a plain [`RunningStats`].
///
/// # Why not an atomic Welford?
///
/// The obvious port (jormungandr-style per-field atomics running Welford's
/// recurrence) is racy even though every *field* update is atomic: the
/// `mean`/`m2` updates each read the other field's previous value, so two
/// interleaved `push` calls apply the recurrence to a state neither of them
/// wrote — `m2` is then permanently corrupted, not just transiently stale.
/// The fix is to accumulate only **commutative** per-field contributions
/// whose value does not depend on what any other thread has done:
///
/// * `count` — an integer add,
/// * `Σ(x − offset)` and `Σ(x − offset)²` — floating-point CAS-adds of
///   per-observation terms (shifted by a per-shard offset, the shard's first
///   value, so the squared sums stay numerically tame),
/// * `min`/`max` — CAS min/max.
///
/// Every interleaving of those adds yields the same multiset of
/// contributions, so the race disappears structurally instead of being
/// patched with a wider lock.  Shards (selected by a hash of the calling
/// thread's id) exist purely to keep hot counters off each other's cache
/// lines; correctness does not depend on the thread→shard mapping.
///
/// # Read contract
///
/// [`ConcurrentStats::snapshot`] and [`ConcurrentStats::merge`] assume the
/// accumulator is *quiescent*: all writer threads have been joined (or
/// otherwise happens-before-ordered) first.  Reading mid-flight returns a
/// mixture of old and new contributions — never a torn float, but not a
/// consistent cut either.
#[derive(Debug)]
pub struct ConcurrentStats {
    shards: Box<[StatShard]>,
}

/// One cache-line-isolated accumulator shard.
#[derive(Debug)]
#[repr(align(128))]
struct StatShard {
    count: AtomicU64,
    /// `Σ(x − offset)` as f64 bits.
    sum: AtomicU64,
    /// `Σ(x − offset)²` as f64 bits.
    sum_sq: AtomicU64,
    /// Running minimum as f64 bits (starts at +∞).
    min: AtomicU64,
    /// Running maximum as f64 bits (starts at −∞).
    max: AtomicU64,
    /// Numerical-stability offset: the first value this shard saw.
    offset: OnceLock<f64>,
}

impl StatShard {
    fn new() -> Self {
        StatShard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0f64.to_bits()),
            sum_sq: AtomicU64::new(0.0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            offset: OnceLock::new(),
        }
    }

    /// Fold this shard's commutative sums back into exact Welford form.
    fn summary(&self) -> RunningStats {
        let n = self.count.load(Ordering::Acquire);
        if n == 0 {
            return RunningStats::new();
        }
        let offset = self.offset.get().copied().unwrap_or(0.0);
        let s1 = f64::from_bits(self.sum.load(Ordering::Acquire));
        let s2 = f64::from_bits(self.sum_sq.load(Ordering::Acquire));
        let nf = n as f64;
        RunningStats {
            count: n,
            mean: offset + s1 / nf,
            // Σ(x − mean)² = Σ(x − off)² − (Σ(x − off))²/n, clamped against
            // the cancellation that can push it a few ulps negative.
            m2: (s2 - s1 * s1 / nf).max(0.0),
            min: f64::from_bits(self.min.load(Ordering::Acquire)),
            max: f64::from_bits(self.max.load(Ordering::Acquire)),
            sum: offset * nf + s1,
        }
    }

    /// Add a whole summarized population to this shard (commutative, so it
    /// is safe concurrently with `record` traffic on the same shard).
    fn absorb(&self, s: &RunningStats) {
        if s.count == 0 {
            return;
        }
        let offset = *self.offset.get_or_init(|| s.mean);
        let nf = s.count as f64;
        let shift = s.mean - offset;
        self.count.fetch_add(s.count, Ordering::AcqRel);
        // Σ(x − off) = n·(mean − off); Σ(x − off)² = m2 + n·(mean − off)².
        atomic_f64_add(&self.sum, nf * shift);
        atomic_f64_add(&self.sum_sq, s.m2 + nf * shift * shift);
        atomic_f64_min(&self.min, s.min);
        atomic_f64_max(&self.max, s.max);
    }
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_min(cell: &AtomicU64, x: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while x < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, x.to_bits(), Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, x: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while x > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, x.to_bits(), Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Stable per-thread shard token (a mixed hash of the thread id), cached in
/// a thread-local so the hot `record` path is a mask away from its shard.
fn shard_token() -> u64 {
    use std::cell::Cell;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    thread_local! {
        static TOKEN: Cell<u64> = const { Cell::new(0) };
    }
    TOKEN.with(|slot| {
        let mut token = slot.get();
        if token == 0 {
            let mut hasher = DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            token = hasher.finish() | 1;
            slot.set(token);
        }
        token
    })
}

impl Default for ConcurrentStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentStats {
    /// Create an accumulator sized for the host's parallelism (shard count
    /// is the next power of two at or above twice the core count, capped at
    /// 64 — enough to keep unrelated threads off shared cache lines).
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map_or(8, |n| n.get());
        Self::with_shards((cores * 2).next_power_of_two().min(64))
    }

    /// Create an accumulator with an explicit shard count (rounded up to a
    /// power of two so shard selection is a mask).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ConcurrentStats {
            shards: (0..n).map(|_| StatShard::new()).collect(),
        }
    }

    /// Add one observation; callable from any thread through `&self`.
    pub fn record(&self, x: f64) {
        let shard = &self.shards[shard_token() as usize & (self.shards.len() - 1)];
        let offset = *shard.offset.get_or_init(|| x);
        let d = x - offset;
        shard.count.fetch_add(1, Ordering::AcqRel);
        atomic_f64_add(&shard.sum, d);
        atomic_f64_add(&shard.sum_sq, d * d);
        atomic_f64_min(&shard.min, x);
        atomic_f64_max(&shard.max, x);
    }

    /// Total observations recorded so far (exact once writers are quiescent).
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Acquire))
            .sum()
    }

    /// Merge another accumulator's contents into this one, shard by shard.
    /// Still lock-free and commutative: `record` traffic may continue on
    /// `self`, but `other` must be quiescent (see the type-level contract).
    pub fn merge(&self, other: &ConcurrentStats) {
        for (i, shard) in other.shards.iter().enumerate() {
            let summary = shard.summary();
            if summary.count() > 0 {
                self.shards[i & (self.shards.len() - 1)].absorb(&summary);
            }
        }
    }

    /// Fold the quiescent accumulator into a plain [`RunningStats`] by
    /// merging shard summaries in fixed index order (deterministic for a
    /// given shard assignment).
    pub fn snapshot(&self) -> RunningStats {
        let mut out = RunningStats::new();
        for shard in self.shards.iter() {
            let summary = shard.summary();
            if summary.count() > 0 {
                out.merge(&summary);
            }
        }
        out
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// `observe(t, v)` records that the signal takes value `v` *from* time `t`
/// until the next observation.  Used for queue lengths and channel-mode
/// occupancy, where the paper's metrics are time averages rather than
/// per-event averages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: Option<SimTime>,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
    max_value: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: None,
            last_value: 0.0,
            weighted_sum: 0.0,
            total_time: 0.0,
            max_value: f64::NEG_INFINITY,
        }
    }

    /// Record that the signal takes value `value` starting at `time`.
    ///
    /// Observations must be fed in non-decreasing time order.
    pub fn observe(&mut self, time: SimTime, value: f64) {
        if let Some(prev) = self.last_time {
            debug_assert!(time >= prev, "observations must be time-ordered");
            let dt = (time - prev).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
            self.total_time += dt;
        }
        self.last_time = Some(time);
        self.last_value = value;
        self.max_value = self.max_value.max(value);
    }

    /// Close the observation window at `time` (accounts the final segment).
    ///
    /// A no-op on a never-observed accumulator: there is no open segment to
    /// close, so `max()` stays `None` and `span_secs()` stays 0 rather than
    /// fabricating a zero-valued observation out of the default state.
    pub fn finish(&mut self, time: SimTime) {
        if self.last_time.is_some() {
            self.observe(time, self.last_value);
        }
    }

    /// The time-weighted average over all closed segments.
    pub fn average(&self) -> f64 {
        if self.total_time <= 0.0 {
            self.last_value
        } else {
            self.weighted_sum / self.total_time
        }
    }

    /// The largest value observed.
    pub fn max(&self) -> Option<f64> {
        (self.max_value != f64::NEG_INFINITY).then_some(self.max_value)
    }

    /// Total observed span in seconds.
    pub fn span_secs(&self) -> f64 {
        self.total_time
    }
}

/// An ordered sequence of `(time, value)` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
    name: String,
}

impl TimeSeries {
    /// Create an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            samples: Vec::new(),
            name: name.into(),
        }
    }

    /// Series name (used as a column header in figure output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample; time is given in seconds.
    pub fn push(&mut self, time_secs: f64, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| time_secs >= t),
            "samples must be time-ordered"
        );
        self.samples.push((time_secs, value));
    }

    /// Append a sample with a [`SimTime`] timestamp.
    pub fn push_at(&mut self, time: SimTime, value: f64) {
        self.push(time.as_secs_f64(), value);
    }

    /// All samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.samples.last().copied()
    }

    /// Linearly interpolate the value at `time_secs`.
    ///
    /// Clamps to the first/last sample outside the observed range; returns
    /// `None` when the series is empty.
    pub fn value_at(&self, time_secs: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let first = self.samples[0];
        let last = *self.samples.last().unwrap();
        if time_secs <= first.0 {
            return Some(first.1);
        }
        if time_secs >= last.0 {
            return Some(last.1);
        }
        let idx = self
            .samples
            .partition_point(|&(t, _)| t <= time_secs)
            .saturating_sub(1);
        let (t0, v0) = self.samples[idx];
        let (t1, v1) = self.samples[idx + 1];
        if (t1 - t0).abs() < f64::EPSILON {
            return Some(v1);
        }
        let alpha = (time_secs - t0) / (t1 - t0);
        Some(v0 + alpha * (v1 - v0))
    }

    /// Resample at a fixed period, linearly interpolating.
    ///
    /// Sample times are computed as `start + i * step` rather than by a
    /// running `t += step`: the incremental form accumulates one rounding
    /// error per step, which over ~1e6 steps drifts past the `end`
    /// tolerance and silently drops (or duplicates) the final sample.
    pub fn resample(&self, start: f64, end: f64, step: f64) -> Vec<(f64, f64)> {
        assert!(step > 0.0, "resample step must be positive");
        let mut out = Vec::new();
        for i in 0.. {
            let t = start + i as f64 * step;
            if t > end + 1e-9 {
                break;
            }
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
        }
        out
    }

    /// The first time at which the series drops to or below `threshold`
    /// (the series is assumed to be non-increasing, e.g. remaining energy or
    /// nodes alive).  Returns `None` if it never does.
    pub fn first_time_below(&self, threshold: f64) -> Option<f64> {
        self.samples
            .iter()
            .find(|&&(_, v)| v <= threshold)
            .map(|&(t, _)| t)
    }
}

/// A fixed-count-bin histogram over `[lo, hi)` with overflow/underflow bins,
/// optionally **auto-resizing**: recording a value at or beyond `hi` doubles
/// the bin width (merging adjacent bin pairs; the bin count never changes)
/// until the value fits or the range reaches a configured growth cap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// Precomputed `bins / (hi - lo)`: `record` sits on the delivery hot path
    /// and a multiply is far cheaper than the two divisions it replaces.
    inv_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    /// The largest `hi` the range may grow to by doubling; equal to `hi` for
    /// a fixed-range histogram.
    max_hi: f64,
}

impl Histogram {
    /// Create a fixed-range histogram with `bins` equal-width bins spanning
    /// `[lo, hi)`.  Values at or beyond `hi` always land in the overflow bin.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        Self::with_auto_resize(lo, hi, bins, hi)
    }

    /// Create an auto-resizing histogram: when a value at or beyond the
    /// current `hi` is recorded, the bin width doubles (adjacent bin pairs
    /// merge, so the bin count and all already-recorded counts are preserved
    /// exactly) until the value fits or doubling again would push `hi` past
    /// `max_hi`.  Values beyond the cap still land in the overflow bin, so
    /// the [`Histogram::quantile`] `None` contract survives for truly
    /// unbounded observations while merely-saturated distributions stay
    /// quantifiable (at coarser resolution).
    ///
    /// The final bin layout depends only on the multiset of recorded values,
    /// not on their order: a value recorded before a doubling is merged into
    /// exactly the bin it would have landed in afterwards.
    pub fn with_auto_resize(lo: f64, hi: f64, bins: usize, max_hi: f64) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(max_hi >= hi, "growth cap must be at or beyond the range");
        Histogram {
            lo,
            hi,
            inv_width: bins as f64 / (hi - lo),
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            max_hi,
        }
    }

    /// Double the bin width (halving resolution) until `x < hi` or the next
    /// doubling would exceed the growth cap.  Bin `k` of the widened layout
    /// absorbs bins `2k` and `2k + 1` of the old one — exactly where a value
    /// recorded at the widened resolution would land, so resizing commutes
    /// with recording.
    fn grow_to_cover(&mut self, x: f64) {
        while x >= self.hi {
            let doubled_hi = self.lo + 2.0 * (self.hi - self.lo);
            if doubled_hi > self.max_hi {
                return; // at the cap: x stays an overflow observation
            }
            self.double_width();
        }
    }

    /// One doubling step: bin `k` of the widened layout absorbs bins `2k`
    /// and `2k + 1` of the old one.  The caller checks the growth cap.
    fn double_width(&mut self) {
        let n = self.bins.len();
        for k in 0..n {
            let merged = match (self.bins.get(2 * k), self.bins.get(2 * k + 1)) {
                (Some(&a), Some(&b)) => a + b,
                (Some(&a), None) => a,
                _ => 0,
            };
            self.bins[k] = merged;
        }
        self.hi = self.lo + 2.0 * (self.hi - self.lo);
        self.inv_width = n as f64 / (self.hi - self.lo);
    }

    /// Merge another histogram recorded under the same base layout (same
    /// `lo`, same bin count, ranges related by doublings — which is exactly
    /// what two auto-resizing histograms grown from one configuration look
    /// like).  The merge is **exact and commutative/associative**: bin
    /// counts are integer adds and the merged layout (the wider of the two
    /// ranges, the larger growth cap) depends only on the pair, not on the
    /// merge order, so any merge tree over per-thread histograms yields
    /// identical bins.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram merge requires a shared lo");
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram merge requires equal bin counts"
        );
        self.max_hi = self.max_hi.max(other.max_hi);
        while self.hi < other.hi {
            self.double_width();
        }
        let ratio_f = (self.hi - self.lo) / (other.hi - other.lo);
        let ratio = ratio_f.round() as usize;
        assert!(
            ratio >= 1 && (ratio_f - ratio as f64).abs() < 1e-9,
            "histogram ranges are not doubling-aligned ({} vs {})",
            self.hi,
            other.hi
        );
        // Other's bin `i` (narrower by `ratio`) nests entirely inside our
        // bin `i / ratio`, so coarsening loses nothing the wider layout
        // would have kept.
        for (i, &b) in other.bins.iter().enumerate() {
            if b > 0 {
                self.bins[i / ratio] += b;
            }
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.grow_to_cover(x);
        }
        if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) * self.inv_width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// The current upper edge of the binned range (grows in an auto-resizing
    /// histogram; fixed otherwise).
    pub fn range_hi(&self) -> f64 {
        self.hi
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Number of underflowed / overflowed observations.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate quantile (0..=1) using within-bin linear interpolation.
    ///
    /// Returns `None` when the histogram is empty **or** when the requested
    /// quantile falls inside the overflow bin: observations at or above `hi`
    /// only record that they exceeded the range, so any in-range answer
    /// (previously `Some(hi)`) would silently understate the true value.
    /// Quantiles inside the underflow bin clamp to `lo` (an upper bound on
    /// the true value, which the delay metrics treat as "effectively zero").
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = self.underflow as f64;
        if cum >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        for (i, &b) in self.bins.iter().enumerate() {
            let next = cum + b as f64;
            if next >= target && b > 0 {
                let frac = (target - cum) / b as f64;
                return Some(self.lo + width * (i as f64 + frac));
            }
            cum = next;
        }
        // The target lands beyond all in-range mass, i.e. in the overflow
        // bin (or the histogram holds only outliers): the value is >= `hi`
        // but otherwise unknown.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(data.iter().copied());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(data[..37].iter().copied());
        b.extend(data[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 3);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_half_width_is_scale_free() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0, 3.0, 4.0]);
        let mut b = RunningStats::new();
        b.extend([100.0, 200.0, 300.0, 400.0]);
        let ra = a.ci95_relative_half_width().unwrap();
        let rb = b.ci95_relative_half_width().unwrap();
        assert!((ra - rb).abs() < 1e-12, "same shape ⇒ same relative CI");
        assert!((ra - a.ci95_half_width() / a.mean()).abs() < 1e-12);
        // Undefined cases: too few observations, zero mean.
        let mut single = RunningStats::new();
        single.push(5.0);
        assert_eq!(single.ci95_relative_half_width(), None);
        let mut zero_mean = RunningStats::new();
        zero_mean.extend([-1.0, 1.0]);
        assert_eq!(zero_mean.ci95_relative_half_width(), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        // Signal: 0 for 1s, then 10 for 3s => average = 30/4 = 7.5
        tw.observe(SimTime::ZERO, 0.0);
        tw.observe(SimTime::from_secs(1), 10.0);
        tw.finish(SimTime::from_secs(4));
        assert!((tw.average() - 7.5).abs() < 1e-9);
        assert_eq!(tw.max(), Some(10.0));
        assert!((tw.span_secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_empty_and_point() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.average(), 0.0);
        let mut tw = TimeWeighted::new();
        tw.observe(SimTime::from_secs(2), 5.0);
        // No elapsed time yet; average falls back to the last value.
        assert_eq!(tw.average(), 5.0);
    }

    #[test]
    fn time_series_interpolation() {
        let mut ts = TimeSeries::new("energy");
        ts.push(0.0, 10.0);
        ts.push(10.0, 5.0);
        ts.push(20.0, 0.0);
        assert_eq!(ts.value_at(-1.0), Some(10.0));
        assert_eq!(ts.value_at(25.0), Some(0.0));
        assert!((ts.value_at(5.0).unwrap() - 7.5).abs() < 1e-12);
        assert!((ts.value_at(15.0).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(ts.first_time_below(5.0), Some(10.0));
        assert_eq!(ts.first_time_below(-1.0), None);
        assert_eq!(ts.name(), "energy");
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.last(), Some((20.0, 0.0)));
    }

    #[test]
    fn time_series_resample() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 0.0);
        ts.push(4.0, 8.0);
        let r = ts.resample(0.0, 4.0, 1.0);
        assert_eq!(r.len(), 5);
        assert!((r[2].1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_value_is_none() {
        let ts = TimeSeries::new("empty");
        assert_eq!(ts.value_at(1.0), None);
        assert!(ts.is_empty());
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!(h.bins().iter().all(|&b| b == 10));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 10.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 90.0);
    }

    #[test]
    fn histogram_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-5.0);
        h.record(100.0);
        h.record(5.0);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_all_overflow_quantile_is_none() {
        // Regression: with every observation in the overflow bin, quantile
        // used to return Some(hi) — a silently wrong value for data known
        // only to be >= hi.
        let mut h = Histogram::new(0.0, 10.0, 5);
        for _ in 0..8 {
            h.record(1_000.0);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_quantile_inside_overflow_region_is_none() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..9 {
            h.record(i as f64); // 9 in-range observations
        }
        h.record(50.0); // 1 overflow
                        // The median is in range, the maximum is not.
        assert!(h.quantile(0.5).is_some());
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn auto_resize_doubles_range_and_preserves_counts() {
        let mut h = Histogram::with_auto_resize(0.0, 10.0, 10, 80.0);
        for i in 0..10 {
            h.record(i as f64); // one per bin
        }
        assert_eq!(h.range_hi(), 10.0);
        // A value at 35 forces two doublings: [0,10) -> [0,20) -> [0,40).
        h.record(35.0);
        assert_eq!(h.range_hi(), 40.0);
        assert_eq!(h.count(), 11);
        assert_eq!(h.outliers(), (0, 0), "35 fits after resizing");
        // The original ten observations survived the pair merges exactly.
        assert_eq!(h.bins().iter().sum::<u64>(), 11);
        assert_eq!(&h.bins()[..3], &[4, 4, 2], "0-3, 4-7, 8-9 per 4-wide bin");
        // Beyond the cap (next doubling would need hi = 160 > 80): overflow.
        h.record(100.0);
        assert_eq!(h.range_hi(), 80.0, "one last doubling to the cap");
        assert_eq!(h.outliers(), (0, 1));
        assert_eq!(h.quantile(1.0), None, "unbounded tail stays unknown");
    }

    #[test]
    fn auto_resize_is_record_order_independent() {
        let values = [1.0, 9.5, 35.0, 4.0, 19.0, 0.0, 39.9];
        let mut forward = Histogram::with_auto_resize(0.0, 10.0, 8, 640.0);
        let mut reverse = Histogram::with_auto_resize(0.0, 10.0, 8, 640.0);
        for &v in &values {
            forward.record(v);
        }
        for &v in values.iter().rev() {
            reverse.record(v);
        }
        assert_eq!(forward.range_hi(), reverse.range_hi());
        assert_eq!(forward.bins(), reverse.bins());
        assert_eq!(
            forward.quantile(0.99).map(f64::to_bits),
            reverse.quantile(0.99).map(f64::to_bits)
        );
    }

    #[test]
    fn saturated_distribution_reports_p99_after_resizing() {
        // Every observation beyond the initial range: a fixed histogram
        // would answer None for every quantile; the auto-resizing one
        // recovers the whole distribution at coarser resolution.
        let mut h = Histogram::with_auto_resize(0.0, 10.0, 100, 10_000.0);
        for i in 0..1000 {
            h.record(50.0 + (i % 100) as f64);
        }
        let p99 = h.quantile(0.99).expect("saturation stays quantifiable");
        assert!((p99 - 149.0).abs() < 10.0, "p99 {p99}");
        let fixed = {
            let mut f = Histogram::new(0.0, 10.0, 100);
            f.record(50.0);
            f
        };
        assert_eq!(
            fixed.quantile(0.99),
            None,
            "fixed range keeps the old contract"
        );
    }

    #[test]
    fn ci95_half_width_shrinks_with_replicates() {
        let mut few = RunningStats::new();
        few.extend([1.0, 2.0, 3.0, 4.0]);
        let mut many = RunningStats::new();
        for _ in 0..16 {
            many.extend([1.0, 2.0, 3.0, 4.0]);
        }
        assert!(few.ci95_half_width() > 0.0);
        // Same dispersion, 16x the observations: the half-width shrinks by
        // the 4x sample-size factor *and* the t(3)=3.182 → t(63)≈1.998
        // critical-value drop.
        assert!(many.ci95_half_width() < few.ci95_half_width() / 3.5);
        // The small-n width uses the Student-t multiplier, not z = 1.96:
        // n = 4, s² = 5/3 ⇒ 3.182 · √(5/12).
        let expected_few = 3.182 * (few.sample_variance() / 4.0).sqrt();
        assert!((few.ci95_half_width() - expected_few).abs() < 1e-9);
        let mut single = RunningStats::new();
        single.push(7.0);
        assert_eq!(single.ci95_half_width(), 0.0);
    }

    #[test]
    fn t_critical_is_continuous_and_monotone() {
        // The tabulated region, the interpolated 31..=120 region and the
        // tail must form one strictly decreasing sequence — the old code
        // jumped 2.042 → 1.96 at df 31, making CI widths non-monotone in n.
        let mut prev = t_critical_975(1);
        for df in 2..=2000 {
            let t = t_critical_975(df);
            assert!(
                t < prev,
                "t_critical_975 must strictly decrease: t({df}) = {t} vs t({}) = {prev}",
                df - 1
            );
            // Past the table edge no step exceeds 0.5 % of the value (the
            // old discontinuity at df 31 was ~4 %); inside the table the
            // tabulated quantiles drop as steeply as the distribution does.
            if df > 30 {
                assert!(prev - t < 0.005 * prev, "step at df {df}: {prev} -> {t}");
            }
            prev = t;
        }
        // Pinned anchors: the table edge, the standard breakpoints, and the
        // normal limit far out.
        assert_eq!(t_critical_975(30), 2.042);
        assert_eq!(t_critical_975(40), 2.021);
        assert_eq!(t_critical_975(60), 2.000);
        assert_eq!(t_critical_975(120), 1.980);
        assert!((t_critical_975(1_000_000) - 1.96).abs() < 1e-4);
        // ci95_half_width is now monotone across the df 30 → 31 boundary
        // for identically dispersed samples.
        let sample = [1.0, 5.0, 9.0];
        let mut n31 = RunningStats::new();
        let mut n32 = RunningStats::new();
        for i in 0..32 {
            if i < 31 {
                n31.push(sample[i % 3]);
            }
            n32.push(sample[i % 3]);
        }
        assert!(n32.ci95_half_width() < n31.ci95_half_width());
    }

    #[test]
    fn time_weighted_finish_on_empty_is_noop() {
        // Regression: finish() on a never-observed accumulator used to
        // route through observe(time, 0.0), fabricating max() == Some(0.0)
        // and seeding a phantom segment start.
        let mut tw = TimeWeighted::new();
        tw.finish(SimTime::from_secs(10));
        assert_eq!(tw.max(), None);
        assert_eq!(tw.span_secs(), 0.0);
        assert_eq!(tw.average(), 0.0);
        // And it did not secretly open a window: a later observe still
        // starts the signal at its own time.
        tw.observe(SimTime::from_secs(20), 3.0);
        tw.finish(SimTime::from_secs(22));
        assert!((tw.average() - 3.0).abs() < 1e-12);
        assert!((tw.span_secs() - 2.0).abs() < 1e-12);
        assert_eq!(tw.max(), Some(3.0));
    }

    #[test]
    fn resample_does_not_drift_over_a_million_steps() {
        let mut ts = TimeSeries::new("long");
        ts.push(0.0, 0.0);
        ts.push(100_000.0, 1.0);
        // 1e6 steps of 0.1: the old `t += step` loop accumulated ~1.3e-6 of
        // rounding error by the end — past the 1e-9 end tolerance — and
        // dropped the final sample.
        let r = ts.resample(0.0, 100_000.0, 0.1);
        assert_eq!(r.len(), 1_000_001);
        let (last_t, last_v) = *r.last().unwrap();
        assert_eq!(last_t.to_bits(), 100_000.0f64.to_bits());
        assert!((last_v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_stats_matches_sequential_single_thread() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin() * 25.0).collect();
        let mut reference = RunningStats::new();
        reference.extend(data.iter().copied());
        let concurrent = ConcurrentStats::with_shards(8);
        for &x in &data {
            concurrent.record(x);
        }
        let snap = concurrent.snapshot();
        assert_eq!(snap.count(), reference.count());
        assert_eq!(concurrent.count(), reference.count());
        assert!((snap.mean() - reference.mean()).abs() < 1e-9);
        assert!((snap.variance() - reference.variance()).abs() < 1e-9);
        assert_eq!(snap.min(), reference.min());
        assert_eq!(snap.max(), reference.max());
        assert!((snap.sum() - reference.sum()).abs() < 1e-9);
    }

    #[test]
    fn concurrent_stats_matches_sequential_across_threads() {
        let concurrent = ConcurrentStats::new();
        let threads = 8;
        let per_thread = 2_000;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let concurrent = &concurrent;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        concurrent.record(((t * per_thread + i) as f64 * 0.11).cos() * 9.0);
                    }
                });
            }
        });
        // Writers are joined: the snapshot contract holds.
        let mut reference = RunningStats::new();
        for j in 0..threads * per_thread {
            reference.push((j as f64 * 0.11).cos() * 9.0);
        }
        let snap = concurrent.snapshot();
        assert_eq!(snap.count(), reference.count());
        assert!((snap.mean() - reference.mean()).abs() < 1e-9);
        assert!((snap.std_dev() - reference.std_dev()).abs() < 1e-7);
        assert_eq!(snap.min(), reference.min());
        assert_eq!(snap.max(), reference.max());
    }

    #[test]
    fn concurrent_stats_merge_matches_pooled() {
        let a = ConcurrentStats::with_shards(4);
        let b = ConcurrentStats::with_shards(4);
        let mut pooled = RunningStats::new();
        for i in 0..300 {
            let x = (i as f64).sqrt() * 3.0 - 10.0;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            pooled.push(x);
        }
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count(), pooled.count());
        assert!((snap.mean() - pooled.mean()).abs() < 1e-9);
        assert!((snap.variance() - pooled.variance()).abs() < 1e-9);
        assert_eq!(snap.min(), pooled.min());
        assert_eq!(snap.max(), pooled.max());
    }

    #[test]
    fn histogram_merge_is_exact_and_order_independent() {
        let values_a = [1.0, 9.5, 35.0, 4.0];
        let values_b = [19.0, 0.0, 39.9, 120.0];
        let record_all = |values: &[f64]| {
            let mut h = Histogram::with_auto_resize(0.0, 10.0, 8, 640.0);
            for &v in values {
                h.record(v);
            }
            h
        };
        // One histogram fed everything vs two merged partial histograms.
        let mut whole = record_all(&values_a);
        for &v in &values_b {
            whole.record(v);
        }
        let (a, b) = (record_all(&values_a), record_all(&values_b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for merged in [&ab, &ba] {
            assert_eq!(merged.count(), whole.count());
            assert_eq!(merged.range_hi(), whole.range_hi());
            assert_eq!(merged.bins(), whole.bins());
            assert_eq!(merged.outliers(), whole.outliers());
        }
    }
}
