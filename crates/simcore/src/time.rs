//! Virtual time for the discrete-event simulator.
//!
//! Time is represented as an integer number of nanoseconds since the start of
//! the simulation.  Using fixed-point time (instead of `f64` seconds) keeps
//! event ordering exact: two events scheduled at the same instant compare
//! equal on every platform, and accumulating millions of sub-millisecond
//! packet/tone events never drifts.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Round a non-negative float to the nearest integer nanosecond count.
///
/// Equivalent to `x.round() as u64` for the half-up convention, but compiles
/// to straight-line arithmetic instead of a libm `round` call — this sits on
/// the simulator's hot path (every stochastic delay goes through it).
#[inline]
fn round_nonneg_to_u64(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    (x + 0.5) as u64
}

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant of virtual simulation time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual simulation time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl SimTime {
    /// The simulation origin, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds.  Negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimTime(0)
        } else {
            SimTime(round_nonneg_to_u64(secs * NANOS_PER_SEC as f64))
        }
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction returning `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds.  Negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            Duration(0)
        } else {
            Duration(round_nonneg_to_u64(secs * NANOS_PER_SEC as f64))
        }
    }

    /// Construct from fractional milliseconds.  Negative values clamp to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True iff the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float (e.g. a random backoff factor).
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(factor >= 0.0, "duration factor must be non-negative");
        Duration(round_nonneg_to_u64(self.0 as f64 * factor))
    }

    /// The time it takes to move `bits` bits over a link of `bits_per_sec`.
    pub fn for_bits(bits: u64, bits_per_sec: f64) -> Duration {
        assert!(bits_per_sec > 0.0, "link rate must be positive");
        Duration::from_secs_f64(bits as f64 / bits_per_sec)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MILLI {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(50).as_millis_f64(), 50.0);
        assert_eq!(Duration::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(Duration::from_secs_f64(-0.5), Duration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), Duration::from_millis(10));
        // Saturating subtraction: the past minus the future is zero.
        assert_eq!(
            SimTime::from_millis(5) - SimTime::from_millis(9),
            Duration::ZERO
        );
        assert_eq!(Duration::from_millis(4) * 3, Duration::from_millis(12));
        assert_eq!(Duration::from_millis(12) / 4, Duration::from_millis(3));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_nanos(1_000);
        let b = SimTime::from_nanos(1_001);
        assert!(a < b);
        assert_eq!(a, SimTime::from_micros(1));
    }

    #[test]
    fn airtime_for_bits() {
        // 2000-bit packet at 2 Mbps takes exactly 1 ms.
        let d = Duration::for_bits(2_000, 2_000_000.0);
        assert_eq!(d, Duration::from_millis(1));
        // ... and at 250 kbps it takes 8 ms.
        let d = Duration::for_bits(2_000, 250_000.0);
        assert_eq!(d, Duration::from_millis(8));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = Duration::from_millis(20).mul_f64(0.5);
        assert_eq!(d, Duration::from_millis(10));
        assert_eq!(Duration::from_millis(20).mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    #[should_panic]
    fn mul_f64_rejects_negative() {
        let _ = Duration::from_millis(1).mul_f64(-1.0);
    }

    #[test]
    fn checked_since() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(5);
        assert_eq!(b.checked_since(a), Some(Duration::from_millis(2)));
        assert_eq!(a.checked_since(b), None);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }
}
