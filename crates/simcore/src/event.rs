//! Pending-event set for the discrete-event simulator.
//!
//! The queue is a 4-ary implicit min-heap over `(time, sequence)` keys, so
//! the earliest event is popped first and events scheduled for the same
//! instant are delivered in FIFO (insertion) order.  FIFO tie-breaking
//! matters for protocol correctness: e.g. a tone-pulse "collision"
//! notification scheduled before a sensor's "retry" decision at the same
//! instant must be observed first.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::fmt;

/// A typed simulation event.
///
/// Most protocol crates define an enum of events (packet arrival, tone pulse,
/// radio startup complete, round boundary, ...) and implement this marker
/// trait for it.  The engine itself treats events opaquely.
pub trait Event: fmt::Debug {}

impl Event for () {}
impl<T: fmt::Debug> Event for Option<T> {}
impl Event for u64 {}
impl Event for String {}

/// An event together with its firing time and insertion sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Monotonic insertion counter used for FIFO tie-breaking.
    pub sequence: u64,
    /// The payload.
    pub event: E,
}

impl<E> ScheduledEvent<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.sequence)
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Natural order: an earlier event (or, at the same instant, an
        // earlier insertion) compares Less.  The min-heap below orders by the
        // same key, so sorting drained events yields delivery order.
        self.key().cmp(&other.key())
    }
}

/// A time-ordered pending-event set.
///
/// Generic over the event payload type so protocol crates can embed their own
/// event enums without boxing.
///
/// Internally a 4-ary implicit heap over `(time, sequence)` keys stored in a
/// flat `Vec`.  Compared to `std::collections::BinaryHeap` this halves the
/// tree depth (fewer cache lines touched per sift), keeps pops strictly
/// allocation-free, and exposes its [`EventQueue::capacity`] so callers can
/// pre-size the arena from the scenario and verify it never regrows.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<ScheduledEvent<E>>,
    sequence: u64,
    scheduled_total: u64,
    high_watermark: usize,
}

/// Arity of the implicit heap.
const HEAP_ARITY: usize = 4;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            sequence: 0,
            scheduled_total: 0,
            high_watermark: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        let entry = ScheduledEvent {
            time,
            sequence: self.sequence,
            event,
        };
        self.sequence += 1;
        self.scheduled_total += 1;
        self.heap.push(entry);
        self.high_watermark = self.high_watermark.max(self.heap.len());
        // Sift up.  The inserted key is hoisted out of the loop: a freshly
        // pushed event's key never changes while it bubbles, so only the
        // parent side needs re-reading each level.
        let mut i = self.heap.len() - 1;
        if i == 0 {
            return;
        }
        let entry_key = self.heap[i].key();
        while i > 0 {
            let parent = (i - 1) / HEAP_ARITY;
            if entry_key < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Remove and return the earliest pending event.
    ///
    /// Strictly allocation-free: the arena only shrinks logically.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.heap.is_empty() {
            return None;
        }
        let popped = self.heap.swap_remove(0);
        // Sift the relocated tail element down.  Its key never changes while
        // it sinks, so it is read once outside the loop.
        let len = self.heap.len();
        if len > 1 {
            let sinking_key = self.heap[0].key();
            let mut i = 0;
            loop {
                let first_child = i * HEAP_ARITY + 1;
                if first_child >= len {
                    break;
                }
                let last_child = (first_child + HEAP_ARITY).min(len);
                let mut smallest = i;
                let mut smallest_key = sinking_key;
                for child in first_child..last_child {
                    let child_key = self.heap[child].key();
                    if child_key < smallest_key {
                        smallest = child;
                        smallest_key = child_key;
                    }
                }
                if smallest == i {
                    break;
                }
                self.heap.swap(i, smallest);
                i = smallest;
            }
        }
        Some(popped)
    }

    /// Peek at the firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Pop the earliest pending event, but only if it fires at or before
    /// `deadline`.  Fuses the peek-then-pop pair every deadline-bounded event
    /// loop performs into a single root access.
    pub fn pop_if_at_or_before(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        if self.heap.first()?.time > deadline {
            return None;
        }
        self.pop()
    }

    /// Drain *every* event scheduled for the earliest pending instant into
    /// `out` (cleared first), provided that instant is at or before
    /// `deadline`.  Returns the batch's timestamp, or `None` when nothing
    /// fires by the deadline.
    ///
    /// Events are appended in exactly the order [`EventQueue::pop`] would
    /// have delivered them — FIFO within the instant — so a caller that
    /// processes the batch front-to-back observes the identical schedule,
    /// while paying the heap's sift cost once per *instant* instead of once
    /// per event.  Events a handler schedules *for the same instant* are not
    /// part of the returned batch: they carry later sequence numbers and
    /// form the next batch at the same timestamp, which is again exactly
    /// when a one-at-a-time loop would deliver them.
    pub fn pop_batch_at_or_before(
        &mut self,
        deadline: SimTime,
        out: &mut Vec<ScheduledEvent<E>>,
    ) -> Option<SimTime> {
        out.clear();
        let at = self.heap.first()?.time;
        if at > deadline {
            return None;
        }
        while let Some(head) = self.heap.first() {
            if head.time != at {
                break;
            }
            out.push(self.pop().expect("head exists"));
        }
        Some(at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current allocated capacity of the backing arena.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The largest number of events that were ever pending simultaneously —
    /// use together with [`EventQueue::capacity`] to check a pre-sized queue
    /// never had to regrow.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop every pending event (capacity is retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1u64);
        q.push(SimTime::from_millis(5), 2u64);
        assert_eq!(q.pop().unwrap().event, 2);
        q.push(SimTime::from_millis(7), 3u64);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_and_high_watermark_are_tracked() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert_eq!(q.high_watermark(), 0);
        for i in 0..40u64 {
            q.push(SimTime::from_millis(i), i);
        }
        for _ in 0..10 {
            q.pop();
        }
        for i in 0..20u64 {
            q.push(SimTime::from_millis(100 + i), i);
        }
        // Peak was max(40, 30 + 20) = 50 pending events; capacity never grew.
        assert_eq!(q.high_watermark(), 50);
        assert!(q.capacity() >= 64);
        assert_eq!(q.len(), 50);
    }

    #[test]
    fn heap_orders_adversarial_interleavings() {
        // Pseudo-random pushes interleaved with pops must always drain in
        // (time, insertion) order — exercises sift-up/down across arity
        // boundaries.
        let mut q = EventQueue::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut drained: Vec<(SimTime, u64)> = Vec::new();
        for round in 0..50 {
            for _ in 0..(round % 7) + 1 {
                q.push(SimTime::from_nanos(step() % 1000), ());
            }
            if round % 3 == 0 {
                if let Some(e) = q.pop() {
                    drained.push((e.time, e.sequence));
                }
            }
        }
        while let Some(e) = q.pop() {
            drained.push((e.time, e.sequence));
        }
        // Every drain segment between pushes is locally sorted; verify the
        // global multiset drains fully and the final full drain is sorted.
        assert_eq!(drained.len(), (0..50).map(|r| (r % 7) + 1).sum::<usize>());
        let tail: Vec<_> = drained[17..].to_vec(); // after the last interleaved pop
        let mut sorted = tail.clone();
        sorted.sort();
        assert_eq!(tail, sorted);
    }

    #[test]
    fn batch_pop_drains_one_instant_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        q.push(t, 0u64);
        q.push(SimTime::from_millis(20), 99u64);
        q.push(t, 1u64);
        q.push(t, 2u64);
        let mut batch = Vec::new();
        assert_eq!(
            q.pop_batch_at_or_before(SimTime::from_secs(1), &mut batch),
            Some(t)
        );
        let order: Vec<u64> = batch.iter().map(|e| e.event).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(q.len(), 1);
        // The next batch is the later instant.
        assert_eq!(
            q.pop_batch_at_or_before(SimTime::from_secs(1), &mut batch),
            Some(SimTime::from_millis(20))
        );
        assert_eq!(batch.len(), 1);
        assert!(q
            .pop_batch_at_or_before(SimTime::from_secs(1), &mut batch)
            .is_none());
        assert!(batch.is_empty(), "a failed batch pop clears the buffer");
    }

    #[test]
    fn batch_pop_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), ());
        let mut batch = vec![];
        assert!(q
            .pop_batch_at_or_before(SimTime::from_millis(29), &mut batch)
            .is_none());
        assert_eq!(q.len(), 1, "past-deadline events stay queued");
        assert_eq!(
            q.pop_batch_at_or_before(SimTime::from_millis(30), &mut batch),
            Some(SimTime::from_millis(30))
        );
    }

    #[test]
    fn batch_pop_matches_single_pop_sequence_exactly() {
        // The same adversarial interleaving drained one-at-a-time and
        // batch-at-a-time must observe identical (time, sequence) schedules.
        let fill = |q: &mut EventQueue<u64>| {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for i in 0..500u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.push(SimTime::from_nanos((state >> 33) % 64), i);
            }
        };
        let mut single = EventQueue::new();
        let mut batched = EventQueue::new();
        fill(&mut single);
        fill(&mut batched);
        let mut a = Vec::new();
        while let Some(e) = single.pop() {
            a.push((e.time, e.sequence, e.event));
        }
        let mut b = Vec::new();
        let mut batch = Vec::new();
        while let Some(at) = batched.pop_batch_at_or_before(SimTime::from_secs(1), &mut batch) {
            for e in batch.drain(..) {
                assert_eq!(e.time, at);
                b.push((e.time, e.sequence, e.event));
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn peek_time_and_counters() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(1) + Duration::from_nanos(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // clearing does not reset the lifetime counter
        assert_eq!(q.scheduled_total(), 2);
    }
}
