//! Pending-event set for the discrete-event simulator.
//!
//! The queue is a binary max-heap over `Reverse(time, sequence)` so that the
//! earliest event is popped first and events scheduled for the same instant
//! are delivered in FIFO (insertion) order.  FIFO tie-breaking matters for
//! protocol correctness: e.g. a tone-pulse "collision" notification scheduled
//! before a sensor's "retry" decision at the same instant must be observed
//! first.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A typed simulation event.
///
/// Most protocol crates define an enum of events (packet arrival, tone pulse,
/// radio startup complete, round boundary, ...) and implement this marker
/// trait for it.  The engine itself treats events opaquely.
pub trait Event: fmt::Debug {}

impl Event for () {}
impl<T: fmt::Debug> Event for Option<T> {}
impl Event for u64 {}
impl Event for String {}

/// An event together with its firing time and insertion sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Monotonic insertion counter used for FIFO tie-breaking.
    pub sequence: u64,
    /// The payload.
    pub event: E,
}

impl<E> ScheduledEvent<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.sequence)
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the binary max-heap yields the *earliest* event first.
        other.key().cmp(&self.key())
    }
}

/// A time-ordered pending-event set.
///
/// Generic over the event payload type so protocol crates can embed their own
/// event enums without boxing.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    sequence: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            sequence: 0,
            scheduled_total: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            sequence: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let entry = ScheduledEvent {
            time,
            sequence: self.sequence,
            event,
        };
        self.sequence += 1;
        self.scheduled_total += 1;
        self.heap.push(entry);
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Peek at the firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1u64);
        q.push(SimTime::from_millis(5), 2u64);
        assert_eq!(q.pop().unwrap().event, 2);
        q.push(SimTime::from_millis(7), 3u64);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_and_counters() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(1) + Duration::from_nanos(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // clearing does not reset the lifetime counter
        assert_eq!(q.scheduled_total(), 2);
    }
}
