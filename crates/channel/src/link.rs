//! Per-link composite channel: path loss + shadowing + fading → SNR (CSI).
//!
//! [`LinkChannel`] is the object each sensor–cluster-head pair owns.  It is
//! shared by both directions (channel reciprocity, assumption 2 of the
//! paper): the sensor measures the SNR of the *downlink* tone signal and uses
//! it as the CSI of the *uplink* data channel.  The CSI is assumed constant
//! over a frame (assumption 3), which is why consumers sample it once per
//! transmission attempt rather than continuously.

use caem_simcore::rng::StreamRng;
use caem_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::fading::{FadingModel, RayleighFading};
use crate::geometry::Position;
use crate::pathloss::PathLossModel;
use crate::shadowing::{ShadowingConfig, ShadowingProcess};
use crate::watts_to_dbm;

/// Static link-budget parameters shared by every link in a scenario.
///
/// Note the distinction between *radiated* power (what determines the SNR,
/// held here) and *consumed* power (what drains the battery, held in
/// `caem-energy`'s `RadioPowerProfile`).  Table II's 0.66 W / 92 mW figures
/// are circuit power draws of an RFM-class radio whose radiated output is on
/// the order of 1 mW (0 dBm); using the draw as EIRP would place every node
/// 25+ dB above the highest ABICM threshold and no channel adaptation would
/// ever be exercised.  The default radiated powers preserve Table II's
/// data-to-tone power ratio (≈ 8.6 dB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Radiated (EIRP) power of the data radio, in dBm.
    pub data_tx_dbm: f64,
    /// Radiated (EIRP) power of the tone radio, in dBm.
    pub tone_tx_dbm: f64,
    /// Receiver noise floor in dBm (thermal noise + noise figure over the
    /// signal bandwidth).
    pub noise_floor_dbm: f64,
    /// Combined antenna gains in dB (transmit + receive).
    pub antenna_gain_db: f64,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget::paper_default()
    }
}

impl LinkBudget {
    /// Link budget for the paper's scenario.
    ///
    /// * Radiated data power 0 dBm (1 mW), typical of RFM-class ISM radios,
    ///   chosen so that across the 100 m × 100 m field the average SNR spans
    ///   all four ABICM thresholds (6–22 dB).
    /// * Radiated tone power 8.6 dB below the data radio, matching the
    ///   0.66 W : 92 mW consumption ratio of Table II.
    /// * Noise floor: thermal noise over 2 MHz is −174 + 10·log10(2·10⁶) ≈
    ///   −111 dBm; a 10 dB receiver noise figure gives −101 dBm.
    pub fn paper_default() -> Self {
        LinkBudget {
            data_tx_dbm: 0.0,
            tone_tx_dbm: -8.6,
            noise_floor_dbm: -101.0,
            antenna_gain_db: 0.0,
        }
    }

    /// Build a budget from radiated powers expressed in watts.
    pub fn from_radiated_watts(data_w: f64, tone_w: f64, noise_floor_dbm: f64) -> Self {
        LinkBudget {
            data_tx_dbm: watts_to_dbm(data_w),
            tone_tx_dbm: watts_to_dbm(tone_w),
            noise_floor_dbm,
            antenna_gain_db: 0.0,
        }
    }

    /// Data-radio radiated power in dBm.
    pub fn data_tx_dbm(&self) -> f64 {
        self.data_tx_dbm
    }

    /// Tone-radio radiated power in dBm.
    pub fn tone_tx_dbm(&self) -> f64 {
        self.tone_tx_dbm
    }
}

/// Breakdown of one CSI measurement, useful for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQualityReport {
    /// Link distance in metres.
    pub distance_m: f64,
    /// Deterministic path loss, dB.
    pub path_loss_db: f64,
    /// Shadowing attenuation, dB (zero mean; positive = extra loss).
    pub shadowing_db: f64,
    /// Microscopic fading gain, dB (0 dB = average channel).
    pub fading_db: f64,
    /// Resulting SNR of the data channel, dB.
    pub snr_db: f64,
    /// SNR observed on the tone channel (differs only by transmit power).
    pub tone_snr_db: f64,
}

/// The time-varying channel between one sensor and one cluster head.
///
/// Two layers of caching keep repeated CSI queries off the transcendental
/// math (`log10`, `exp`, normal draws) that dominates the simulator's event
/// loop:
///
/// * the deterministic path loss is a pure function of the (rarely changing)
///   link distance, so it is computed once per `set_distance`;
/// * a full [`LinkQualityReport`] is memoised per instant — the shadowing and
///   fading processes are frozen within one instant by construction, so a
///   same-time re-measurement (e.g. the sense → decide → transmit chain of
///   one MAC event) returns bit-identical values without re-deriving them.
#[derive(Debug, Clone)]
pub struct LinkChannel {
    budget: LinkBudget,
    path_loss: PathLossModel,
    shadowing: ShadowingProcess,
    fading: RayleighFading,
    distance_m: f64,
    /// Path loss at `distance_m`, recomputed only when the distance changes.
    cached_path_loss_db: f64,
    /// Most recent measurement, keyed by its instant.
    last_report: Option<(SimTime, LinkQualityReport)>,
}

impl LinkChannel {
    /// Create a link between two fixed positions.
    ///
    /// `shadowing_rng` and `fading_rng` must be distinct streams (e.g. derived
    /// with [`caem_simcore::rng::components::SHADOWING`] and
    /// [`caem_simcore::rng::components::FADING`]) so the two processes are
    /// independent.
    pub fn new(
        a: Position,
        b: Position,
        budget: LinkBudget,
        path_loss: PathLossModel,
        shadowing_config: ShadowingConfig,
        shadowing_rng: StreamRng,
        fading_rng: StreamRng,
    ) -> Self {
        Self::with_distance(
            a.distance_to(&b),
            budget,
            path_loss,
            shadowing_config,
            shadowing_rng,
            fading_rng,
        )
    }

    /// Create a link with an explicit distance (used by tests and by the
    /// cluster-head switch, where only the distance changes).
    pub fn with_distance(
        distance_m: f64,
        budget: LinkBudget,
        path_loss: PathLossModel,
        shadowing_config: ShadowingConfig,
        shadowing_rng: StreamRng,
        fading_rng: StreamRng,
    ) -> Self {
        LinkChannel {
            budget,
            path_loss,
            shadowing: ShadowingProcess::new(shadowing_config, shadowing_rng),
            fading: RayleighFading::with_default_coherence(fading_rng),
            distance_m,
            cached_path_loss_db: path_loss.loss_db(distance_m),
            last_report: None,
        }
    }

    /// The link distance in metres.
    pub fn distance_m(&self) -> f64 {
        self.distance_m
    }

    /// Update the link distance (e.g. after a LEACH cluster-head switch the
    /// sensor talks to a different head over the *same* fading environment).
    pub fn set_distance(&mut self, distance_m: f64) {
        assert!(distance_m >= 0.0, "distance must be non-negative");
        self.distance_m = distance_m;
        self.cached_path_loss_db = self.path_loss.loss_db(distance_m);
        self.last_report = None;
    }

    /// The static link budget.
    pub fn budget(&self) -> LinkBudget {
        self.budget
    }

    /// Measure the CSI at virtual time `now`.
    ///
    /// Both the data-channel SNR and the tone-channel SNR are produced from
    /// the *same* propagation realization (assumption 1: the tone and data
    /// channels share attenuation and fading), so the sensor's tone-based
    /// estimate equals the data-channel CSI up to the transmit-power offset.
    pub fn measure(&mut self, now: SimTime) -> LinkQualityReport {
        // Same-instant cache: within one instant the shadowing and fading
        // processes return their frozen state, so the recomputation would be
        // bit-identical — skip it.
        if let Some((at, report)) = self.last_report {
            if at == now {
                return report;
            }
        }
        let path_loss_db = self.cached_path_loss_db;
        let shadowing_db = self.shadowing.sample_db(now);
        let fading_db = self.fading.gain_db(now);
        let gain_db = -path_loss_db - shadowing_db + fading_db + self.budget.antenna_gain_db;
        let snr_db = self.budget.data_tx_dbm() + gain_db - self.budget.noise_floor_dbm;
        let tone_snr_db = self.budget.tone_tx_dbm() + gain_db - self.budget.noise_floor_dbm;
        let report = LinkQualityReport {
            distance_m: self.distance_m,
            path_loss_db,
            shadowing_db,
            fading_db,
            snr_db,
            tone_snr_db,
        };
        self.last_report = Some((now, report));
        report
    }

    /// Convenience: just the data-channel SNR in dB.
    pub fn snr_db(&mut self, now: SimTime) -> f64 {
        self.measure(now).snr_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::rng::{components, RngStream};
    use caem_simcore::time::Duration;

    fn make_link(distance: f64, seed: u64) -> LinkChannel {
        let streams = RngStream::new(seed);
        LinkChannel::with_distance(
            distance,
            LinkBudget::paper_default(),
            PathLossModel::paper_default(),
            ShadowingConfig::default(),
            streams.derive(components::SHADOWING, 0),
            streams.derive(components::FADING, 0),
        )
    }

    #[test]
    fn budget_defaults_preserve_table_ii_power_ratio() {
        let b = LinkBudget::paper_default();
        // The radiated data:tone ratio matches the consumed 0.66 W : 92 mW
        // ratio from Table II (≈ 8.56 dB).
        let ratio_db = b.data_tx_dbm() - b.tone_tx_dbm();
        let table_ii_ratio_db = 10.0 * (0.66f64 / 0.092).log10();
        assert!(
            (ratio_db - table_ii_ratio_db).abs() < 0.1,
            "ratio {ratio_db}"
        );
        assert_eq!(b.noise_floor_dbm, -101.0);
        // Constructing from radiated watts agrees with the dBm fields.
        let w = LinkBudget::from_radiated_watts(0.001, 0.000_138, -101.0);
        assert!((w.data_tx_dbm() - 0.0).abs() < 0.01);
        assert!((w.data_tx_dbm() - w.tone_tx_dbm() - table_ii_ratio_db).abs() < 0.2);
    }

    #[test]
    fn field_spans_all_abicm_thresholds() {
        // The whole point of the calibration: across plausible member-to-head
        // distances the *average* SNR must straddle the 6–22 dB mode
        // thresholds, otherwise no protocol would ever adapt.
        let avg_snr = |d: f64| -> f64 {
            let mut link = make_link(d, 42);
            (0..400)
                .map(|i| link.snr_db(SimTime::from_millis(i * 500)))
                .sum::<f64>()
                / 400.0
        };
        assert!(avg_snr(10.0) > 22.0, "10 m should usually support 2 Mbps");
        let mid = avg_snr(45.0);
        assert!(
            (6.0..26.0).contains(&mid),
            "45 m average SNR {mid} should sit near the mode boundaries"
        );
        assert!(
            avg_snr(140.0) < 12.0,
            "the field diagonal should be a poor link"
        );
    }

    #[test]
    fn closer_links_have_higher_average_snr() {
        let mut near = make_link(10.0, 1);
        let mut far = make_link(90.0, 1);
        let n = 500;
        let avg = |link: &mut LinkChannel| -> f64 {
            (0..n)
                .map(|i| link.snr_db(SimTime::from_millis(i * 200)))
                .sum::<f64>()
                / n as f64
        };
        let near_avg = avg(&mut near);
        let far_avg = avg(&mut far);
        assert!(
            near_avg > far_avg + 10.0,
            "near {near_avg} dB should beat far {far_avg} dB"
        );
    }

    #[test]
    fn tone_and_data_snr_differ_by_power_offset_only() {
        let mut link = make_link(40.0, 2);
        let b = LinkBudget::paper_default();
        let offset = b.data_tx_dbm() - b.tone_tx_dbm();
        for i in 0..50 {
            let report = link.measure(SimTime::from_millis(i * 123));
            assert!(
                ((report.snr_db - report.tone_snr_db) - offset).abs() < 1e-9,
                "reciprocity offset violated"
            );
        }
    }

    #[test]
    fn snr_varies_over_time() {
        let mut link = make_link(50.0, 3);
        let mut values = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..200 {
            values.push(link.snr_db(t));
            t += Duration::from_millis(500);
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // With Rayleigh fading + 6 dB shadowing the swing should exceed 10 dB.
        assert!(max - min > 10.0, "swing only {} dB", max - min);
    }

    #[test]
    fn report_components_compose_to_snr() {
        let mut link = make_link(30.0, 4);
        let r = link.measure(SimTime::from_secs(1));
        let budget = LinkBudget::paper_default();
        let expected = budget.data_tx_dbm() - r.path_loss_db - r.shadowing_db + r.fading_db
            - budget.noise_floor_dbm;
        assert!((r.snr_db - expected).abs() < 1e-9);
        assert_eq!(r.distance_m, 30.0);
    }

    #[test]
    fn set_distance_changes_path_loss_only() {
        let mut link = make_link(20.0, 5);
        let t = SimTime::from_secs(2);
        let before = link.measure(t);
        link.set_distance(80.0);
        let after = link.measure(t);
        // Same instant: shadowing & fading frozen, so the SNR delta equals the
        // path-loss delta.
        let snr_delta = before.snr_db - after.snr_db;
        let pl_delta = after.path_loss_db - before.path_loss_db;
        assert!((snr_delta - pl_delta).abs() < 1e-9);
        assert!(pl_delta > 0.0);
    }

    #[test]
    fn link_between_positions_uses_euclidean_distance() {
        let streams = RngStream::new(11);
        let link = LinkChannel::new(
            Position::new(0.0, 0.0),
            Position::new(30.0, 40.0),
            LinkBudget::paper_default(),
            PathLossModel::paper_default(),
            ShadowingConfig::default(),
            streams.derive(components::SHADOWING, 1),
            streams.derive(components::FADING, 1),
        );
        assert!((link.distance_m() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn same_instant_cache_is_transparent() {
        // A link measured twice at the same instant must behave exactly like
        // a link measured once: identical report, and the *next* measurement
        // (which advances the random processes) must also be identical.
        let mut cached = make_link(40.0, 21);
        let mut fresh = make_link(40.0, 21);
        let t1 = SimTime::from_millis(100);
        let t2 = SimTime::from_millis(137);
        let first = cached.measure(t1);
        let repeat = cached.measure(t1);
        assert_eq!(first, repeat);
        assert_eq!(fresh.measure(t1), first);
        // RNG state untouched by the cached re-measurement:
        assert_eq!(cached.measure(t2), fresh.measure(t2));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = make_link(42.0, 77);
        let mut b = make_link(42.0, 77);
        for i in 0..100 {
            let t = SimTime::from_millis(i * 91);
            assert_eq!(a.snr_db(t), b.snr_db(t));
        }
    }

    #[test]
    #[should_panic]
    fn negative_distance_rejected() {
        let mut link = make_link(10.0, 1);
        link.set_distance(-1.0);
    }
}
