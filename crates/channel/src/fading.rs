//! Microscopic (multipath) fading.
//!
//! Microscopic fading is the fast component of channel variation caused by
//! multipath propagation.  For static or slowly moving sensors (< 1 m/s) the
//! paper states the channel coherence time is on the order of 100 ms, so the
//! CSI can be treated as constant over one frame (a few milliseconds) but
//! varies from burst to burst.
//!
//! Two models are provided:
//!
//! * [`RayleighFading`] — non-line-of-sight multipath.  The complex channel
//!   gain `h` evolves as a first-order Gauss–Markov process on its in-phase
//!   and quadrature components; `|h|^2` is then exponentially distributed in
//!   steady state (classic Rayleigh power fading) with unit mean.
//! * [`RicianFading`] — the same diffuse process plus a fixed line-of-sight
//!   component, parameterised by the Rician K-factor.
//!
//! Both expose the fading *power gain in dB* at a requested simulation time.

use caem_simcore::rng::StreamRng;
use caem_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::lin_to_db;

/// Configuration shared by the fading models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FadingConfig {
    /// Channel coherence time in seconds (~0.1 s for quasi-static sensors).
    pub coherence_time_s: f64,
    /// Rician K-factor (linear).  `0` degenerates to Rayleigh fading.
    pub k_factor: f64,
}

impl Default for FadingConfig {
    fn default() -> Self {
        FadingConfig {
            coherence_time_s: 0.1,
            k_factor: 0.0,
        }
    }
}

/// Interface implemented by every microscopic fading model.
pub trait FadingModel {
    /// Fading power gain in dB (0 dB = average channel) at time `now`.
    fn gain_db(&mut self, now: SimTime) -> f64;

    /// Coherence time of the process, seconds.
    fn coherence_time_s(&self) -> f64;
}

/// Correlated Rayleigh fading (Gauss–Markov evolution of the complex gain).
#[derive(Debug, Clone)]
pub struct RayleighFading {
    coherence_time_s: f64,
    rng: StreamRng,
    // In-phase / quadrature diffuse components, each N(0, 1/2) in steady state
    // so that E[|h|^2] = 1.
    in_phase: f64,
    quadrature: f64,
    last_sample: SimTime,
    initialized: bool,
}

impl RayleighFading {
    /// Create a Rayleigh process with the given coherence time.
    pub fn new(coherence_time_s: f64, rng: StreamRng) -> Self {
        assert!(coherence_time_s > 0.0, "coherence time must be positive");
        RayleighFading {
            coherence_time_s,
            rng,
            in_phase: 0.0,
            quadrature: 0.0,
            last_sample: SimTime::ZERO,
            initialized: false,
        }
    }

    /// Create with the paper-default 100 ms coherence time.
    pub fn with_default_coherence(rng: StreamRng) -> Self {
        Self::new(FadingConfig::default().coherence_time_s, rng)
    }

    const COMPONENT_STD: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn advance(&mut self, now: SimTime) {
        if !self.initialized {
            self.in_phase = self.rng.normal(0.0, Self::COMPONENT_STD);
            self.quadrature = self.rng.normal(0.0, Self::COMPONENT_STD);
            self.last_sample = now;
            self.initialized = true;
            return;
        }
        if now <= self.last_sample {
            return;
        }
        let dt = (now - self.last_sample).as_secs_f64();
        let rho = (-dt / self.coherence_time_s).exp();
        let innov_std = Self::COMPONENT_STD * (1.0 - rho * rho).sqrt();
        self.in_phase = rho * self.in_phase + self.rng.normal(0.0, innov_std);
        self.quadrature = rho * self.quadrature + self.rng.normal(0.0, innov_std);
        self.last_sample = now;
    }

    /// The linear power gain `|h|^2` at time `now` (unit mean in steady state).
    pub fn power_gain_linear(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.in_phase * self.in_phase + self.quadrature * self.quadrature
    }
}

impl FadingModel for RayleighFading {
    fn gain_db(&mut self, now: SimTime) -> f64 {
        lin_to_db(self.power_gain_linear(now))
    }

    fn coherence_time_s(&self) -> f64 {
        self.coherence_time_s
    }
}

/// Rician fading: Rayleigh diffuse component plus a line-of-sight component.
#[derive(Debug, Clone)]
pub struct RicianFading {
    diffuse: RayleighFading,
    /// Rician K-factor (LOS power / diffuse power), linear.
    k_factor: f64,
}

impl RicianFading {
    /// Create a Rician process.  `k_factor = 0` is pure Rayleigh.
    pub fn new(coherence_time_s: f64, k_factor: f64, rng: StreamRng) -> Self {
        assert!(k_factor >= 0.0, "K-factor must be non-negative");
        RicianFading {
            diffuse: RayleighFading::new(coherence_time_s, rng),
            k_factor,
        }
    }

    /// Linear power gain with unit mean: the LOS and diffuse components are
    /// scaled so that `E[|h|^2] = 1` regardless of K.
    pub fn power_gain_linear(&mut self, now: SimTime) -> f64 {
        let k = self.k_factor;
        let diffuse_power = self.diffuse.power_gain_linear(now);
        // LOS amplitude a with a^2 = K/(K+1); diffuse scaled by 1/(K+1).
        let los_i = (k / (k + 1.0)).sqrt();
        let scale = 1.0 / (k + 1.0);
        // Recompose: the diffuse process already tracks I/Q; approximate the
        // composite power as LOS^2 + scaled diffuse power + cross term using
        // the current in-phase diffuse sample.
        let i = los_i + self.diffuse.in_phase * scale.sqrt();
        let q = self.diffuse.quadrature * scale.sqrt();
        // Guard: diffuse_power already advanced the process; use components.
        let _ = diffuse_power;
        i * i + q * q
    }
}

impl FadingModel for RicianFading {
    fn gain_db(&mut self, now: SimTime) -> f64 {
        lin_to_db(self.power_gain_linear(now))
    }

    fn coherence_time_s(&self) -> f64 {
        self.diffuse.coherence_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::time::Duration;

    #[test]
    fn rayleigh_mean_power_is_unity() {
        let mut f = RayleighFading::new(0.1, StreamRng::from_seed_u64(1));
        // Independent samples: step 10 coherence times apart.
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            sum += f.power_gain_linear(SimTime::from_millis(i as u64 * 1000));
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean power = {mean}");
    }

    #[test]
    fn rayleigh_power_is_exponential_in_steady_state() {
        // For exponential(1): P(X < 0.693) = 0.5, P(X > 2.3) ≈ 0.1.
        let mut f = RayleighFading::new(0.1, StreamRng::from_seed_u64(2));
        let n = 20_000;
        let mut below_median = 0;
        let mut deep_fade = 0; // below -10 dB, P = 1 - exp(-0.1) ≈ 0.095
        for i in 0..n {
            let p = f.power_gain_linear(SimTime::from_millis(i as u64 * 1000));
            if p < std::f64::consts::LN_2 {
                below_median += 1;
            }
            if p < 0.1 {
                deep_fade += 1;
            }
        }
        let frac_median = below_median as f64 / n as f64;
        let frac_deep = deep_fade as f64 / n as f64;
        assert!(
            (frac_median - 0.5).abs() < 0.03,
            "median frac {frac_median}"
        );
        assert!(
            (frac_deep - 0.095).abs() < 0.02,
            "deep fade frac {frac_deep}"
        );
    }

    #[test]
    fn samples_within_coherence_time_are_similar() {
        let mut f = RayleighFading::new(0.1, StreamRng::from_seed_u64(3));
        let mut close_deltas = Vec::new();
        let mut far_deltas = Vec::new();
        let mut t = SimTime::ZERO;
        let mut prev = f.gain_db(t);
        for _ in 0..2000 {
            t += Duration::from_millis(2); // well within 100 ms coherence
            let g = f.gain_db(t);
            close_deltas.push((g - prev).abs());
            prev = g;
        }
        let mut f = RayleighFading::new(0.1, StreamRng::from_seed_u64(3));
        let mut t = SimTime::ZERO;
        let mut prev = f.gain_db(t);
        for _ in 0..2000 {
            t += Duration::from_secs(2); // 20 coherence times
            let g = f.gain_db(t);
            far_deltas.push((g - prev).abs());
            prev = g;
        }
        let close: f64 = close_deltas.iter().sum::<f64>() / close_deltas.len() as f64;
        let far: f64 = far_deltas.iter().sum::<f64>() / far_deltas.len() as f64;
        assert!(close * 2.0 < far, "close {close} vs far {far}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RayleighFading::new(0.1, StreamRng::from_seed_u64(5));
        let mut b = RayleighFading::new(0.1, StreamRng::from_seed_u64(5));
        for i in 0..200 {
            let t = SimTime::from_millis(i * 37);
            assert_eq!(a.gain_db(t), b.gain_db(t));
        }
    }

    #[test]
    fn rician_high_k_concentrates_near_0db() {
        let mut ray = RayleighFading::new(0.1, StreamRng::from_seed_u64(6));
        let mut ric = RicianFading::new(0.1, 20.0, StreamRng::from_seed_u64(6));
        let n = 5000;
        let mut var_ray = 0.0;
        let mut var_ric = 0.0;
        for i in 0..n {
            let t = SimTime::from_millis(i as u64 * 1000);
            var_ray += ray.gain_db(t).powi(2);
            var_ric += ric.gain_db(t).powi(2);
        }
        // Strong LOS should fluctuate far less (in dB^2) than Rayleigh.
        assert!(var_ric < var_ray * 0.5, "{var_ric} vs {var_ray}");
    }

    #[test]
    fn rician_k_zero_close_to_unit_mean() {
        let mut ric = RicianFading::new(0.1, 0.0, StreamRng::from_seed_u64(8));
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| ric.power_gain_linear(SimTime::from_millis(i as u64 * 1000)))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.06, "mean = {mean}");
    }

    #[test]
    fn coherence_time_accessor() {
        let f = RayleighFading::new(0.25, StreamRng::from_seed_u64(1));
        assert_eq!(f.coherence_time_s(), 0.25);
        let r = RicianFading::new(0.25, 3.0, StreamRng::from_seed_u64(1));
        assert_eq!(r.coherence_time_s(), 0.25);
    }

    #[test]
    #[should_panic]
    fn zero_coherence_time_rejected() {
        RayleighFading::new(0.0, StreamRng::from_seed_u64(1));
    }
}
