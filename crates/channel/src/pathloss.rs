//! Path-loss models: deterministic attenuation of received signal strength
//! with transmitter–receiver distance.
//!
//! The paper only says "path loss refers to the change in received signal
//! strength versus the distance"; it does not commit to a specific model.
//! We provide the three standard candidates used by the WSN literature the
//! paper cites (free space, two-ray ground, log-distance) and default to
//! log-distance with exponent 3.0, which is representative of near-ground
//! sensor deployments in cluttered terrain.

use serde::{Deserialize, Serialize};

/// Default log-distance path-loss exponent for near-ground sensor links.
pub const LOG_DISTANCE_DEFAULT_EXPONENT: f64 = 3.0;

/// Speed of light in m/s.
const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// A path-loss model mapping link distance to attenuation in dB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLossModel {
    /// Free-space (Friis) propagation at the given carrier frequency (Hz).
    FreeSpace {
        /// Carrier frequency in Hz (e.g. 916 MHz ISM for RFM-class radios).
        frequency_hz: f64,
    },
    /// Two-ray ground-reflection model with the given antenna heights (m).
    TwoRayGround {
        /// Carrier frequency in Hz, used below the crossover distance.
        frequency_hz: f64,
        /// Transmitter antenna height in metres.
        tx_height_m: f64,
        /// Receiver antenna height in metres.
        rx_height_m: f64,
    },
    /// Log-distance model: `PL(d) = PL(d0) + 10·n·log10(d/d0)`.
    LogDistance {
        /// Path-loss exponent `n` (2 = free space, 3–4 = cluttered terrain).
        exponent: f64,
        /// Reference distance `d0` in metres.
        reference_distance_m: f64,
        /// Path loss at the reference distance, in dB.
        reference_loss_db: f64,
    },
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel::paper_default()
    }
}

impl PathLossModel {
    /// The default model used by the reproduction: log-distance, exponent 3,
    /// reference 1 m with the free-space loss at 916 MHz.
    pub fn paper_default() -> Self {
        let reference_loss_db = Self::free_space_loss_db(1.0, 916e6);
        PathLossModel::LogDistance {
            exponent: LOG_DISTANCE_DEFAULT_EXPONENT,
            reference_distance_m: 1.0,
            reference_loss_db,
        }
    }

    /// Free-space path loss at distance `d` (m) and frequency `f` (Hz), dB.
    fn free_space_loss_db(distance_m: f64, frequency_hz: f64) -> f64 {
        let d = distance_m.max(0.1);
        let lambda = SPEED_OF_LIGHT / frequency_hz;
        20.0 * (4.0 * std::f64::consts::PI * d / lambda).log10()
    }

    /// Path loss in dB at the given distance (metres).
    ///
    /// Distances below 10 cm are clamped — the models are not valid in the
    /// reactive near field and the clamp keeps the loss finite when a node is
    /// elected cluster head of its own cluster (distance 0 to itself).
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        match *self {
            PathLossModel::FreeSpace { frequency_hz } => Self::free_space_loss_db(d, frequency_hz),
            PathLossModel::TwoRayGround {
                frequency_hz,
                tx_height_m,
                rx_height_m,
            } => {
                // Crossover distance: 4*pi*ht*hr / lambda.
                let lambda = SPEED_OF_LIGHT / frequency_hz;
                let crossover = 4.0 * std::f64::consts::PI * tx_height_m * rx_height_m / lambda;
                if d < crossover {
                    Self::free_space_loss_db(d, frequency_hz)
                } else {
                    // PL = 40 log d - 20 log(ht*hr)
                    40.0 * d.log10() - 20.0 * (tx_height_m * rx_height_m).log10()
                }
            }
            PathLossModel::LogDistance {
                exponent,
                reference_distance_m,
                reference_loss_db,
            } => {
                let d0 = reference_distance_m.max(0.1);
                reference_loss_db + 10.0 * exponent * (d.max(d0) / d0).log10()
            }
        }
    }

    /// Received power in dBm given transmit power in dBm.
    pub fn received_dbm(&self, tx_dbm: f64, distance_m: f64) -> f64 {
        tx_dbm - self.loss_db(distance_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_matches_friis() {
        let m = PathLossModel::FreeSpace {
            frequency_hz: 916e6,
        };
        // Friis at 100 m, 916 MHz: 20 log10(4*pi*100/0.3273) ≈ 71.7 dB
        let loss = m.loss_db(100.0);
        assert!((loss - 71.68).abs() < 0.3, "loss = {loss}");
        // Doubling distance adds 6.02 dB in free space.
        let delta = m.loss_db(200.0) - m.loss_db(100.0);
        assert!((delta - 6.02).abs() < 0.05);
    }

    #[test]
    fn log_distance_slope_matches_exponent() {
        let m = PathLossModel::LogDistance {
            exponent: 3.0,
            reference_distance_m: 1.0,
            reference_loss_db: 40.0,
        };
        assert!((m.loss_db(1.0) - 40.0).abs() < 1e-9);
        // One decade of distance adds 10*n = 30 dB.
        assert!((m.loss_db(10.0) - 70.0).abs() < 1e-9);
        assert!((m.loss_db(100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn loss_is_monotonic_in_distance() {
        for model in [
            PathLossModel::paper_default(),
            PathLossModel::FreeSpace {
                frequency_hz: 916e6,
            },
            PathLossModel::TwoRayGround {
                frequency_hz: 916e6,
                tx_height_m: 0.5,
                rx_height_m: 0.5,
            },
        ] {
            let mut prev = model.loss_db(0.5);
            for d in [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 141.0] {
                let loss = model.loss_db(d);
                assert!(
                    loss >= prev - 1e-9,
                    "{model:?} not monotonic at {d} m: {loss} < {prev}"
                );
                prev = loss;
            }
        }
    }

    #[test]
    fn tiny_distance_is_clamped() {
        let m = PathLossModel::paper_default();
        assert!(m.loss_db(0.0).is_finite());
        assert_eq!(m.loss_db(0.0), m.loss_db(0.05));
    }

    #[test]
    fn two_ray_reduces_to_free_space_below_crossover() {
        let m = PathLossModel::TwoRayGround {
            frequency_hz: 916e6,
            tx_height_m: 1.0,
            rx_height_m: 1.0,
        };
        let fs = PathLossModel::FreeSpace {
            frequency_hz: 916e6,
        };
        // Crossover ≈ 4*pi*1*1/0.327 ≈ 38 m; below that they match.
        assert!((m.loss_db(10.0) - fs.loss_db(10.0)).abs() < 1e-9);
        // Far beyond crossover the two-ray slope is 40 dB/decade.
        let delta = m.loss_db(1000.0) - m.loss_db(100.0);
        assert!((delta - 40.0).abs() < 0.5, "delta = {delta}");
    }

    #[test]
    fn received_power_subtracts_loss() {
        let m = PathLossModel::paper_default();
        let tx_dbm = 28.2; // ~0.66 W
        let rx = m.received_dbm(tx_dbm, 50.0);
        assert!((rx - (tx_dbm - m.loss_db(50.0))).abs() < 1e-12);
        assert!(rx < tx_dbm);
    }

    #[test]
    fn paper_default_is_log_distance() {
        match PathLossModel::paper_default() {
            PathLossModel::LogDistance { exponent, .. } => {
                assert_eq!(exponent, LOG_DISTANCE_DEFAULT_EXPONENT)
            }
            other => panic!("unexpected default {other:?}"),
        }
    }
}
