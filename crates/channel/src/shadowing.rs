//! Correlated log-normal shadowing.
//!
//! Shadowing is the macroscopic component of channel variation: attenuation
//! caused by terrain structure and obstructions, fluctuating over 2–5 s
//! (Section II-B).  We model it as a zero-mean Gaussian process in dB with a
//! first-order autoregressive (Gauss–Markov / Gudmundson-style) temporal
//! correlation:
//!
//! ```text
//! S(t + dt) = rho(dt) * S(t) + sqrt(1 - rho^2) * sigma * w,   w ~ N(0,1)
//! rho(dt)   = exp(-dt / tau)
//! ```
//!
//! where `tau` is the decorrelation time constant (2–5 s per the paper) and
//! `sigma` the shadowing standard deviation in dB (4–8 dB is typical for
//! outdoor sensor fields).

use caem_simcore::rng::StreamRng;
use caem_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Configuration of a shadowing process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation of the shadowing in dB.
    pub sigma_db: f64,
    /// Decorrelation time constant in seconds (the "macroscopic time scale").
    pub decorrelation_time_s: f64,
}

impl Default for ShadowingConfig {
    fn default() -> Self {
        // Middle of the paper's 2–5 s macroscopic range; 6 dB sigma.
        ShadowingConfig {
            sigma_db: 6.0,
            decorrelation_time_s: 3.5,
        }
    }
}

impl ShadowingConfig {
    /// A degenerate configuration with no shadowing at all (for ablations and
    /// for reproducing "simple channel model" baselines).
    pub fn disabled() -> Self {
        ShadowingConfig {
            sigma_db: 0.0,
            decorrelation_time_s: 1.0,
        }
    }
}

/// A temporally correlated log-normal shadowing process for one link.
///
/// The process is sampled lazily: [`ShadowingProcess::sample_db`] advances
/// the AR(1) state from the last sampled instant to the requested instant.
/// Because the channel is assumed reciprocal, a single process per link is
/// shared by both directions.
#[derive(Debug, Clone)]
pub struct ShadowingProcess {
    config: ShadowingConfig,
    rng: StreamRng,
    current_db: f64,
    last_sample: SimTime,
    initialized: bool,
}

impl ShadowingProcess {
    /// Create a new process with its own random stream.
    pub fn new(config: ShadowingConfig, rng: StreamRng) -> Self {
        ShadowingProcess {
            config,
            rng,
            current_db: 0.0,
            last_sample: SimTime::ZERO,
            initialized: false,
        }
    }

    /// The configuration this process was built with.
    pub fn config(&self) -> ShadowingConfig {
        self.config
    }

    /// Sample the shadowing attenuation (dB, zero mean) at virtual time `now`.
    ///
    /// Calling with a time earlier than the previous sample returns the
    /// current state without evolving it (the process only moves forward).
    pub fn sample_db(&mut self, now: SimTime) -> f64 {
        if self.config.sigma_db <= 0.0 {
            return 0.0;
        }
        if !self.initialized {
            // Stationary initial draw.
            self.current_db = self.rng.normal(0.0, self.config.sigma_db);
            self.last_sample = now;
            self.initialized = true;
            return self.current_db;
        }
        if now <= self.last_sample {
            return self.current_db;
        }
        let dt = (now - self.last_sample).as_secs_f64();
        let rho = (-dt / self.config.decorrelation_time_s).exp();
        let innovation_std = self.config.sigma_db * (1.0 - rho * rho).sqrt();
        self.current_db = rho * self.current_db + self.rng.normal(0.0, innovation_std);
        self.last_sample = now;
        self.current_db
    }

    /// Peek at the current state without advancing the process.
    pub fn current_db(&self) -> f64 {
        self.current_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::time::Duration;

    fn process(seed: u64, sigma: f64, tau: f64) -> ShadowingProcess {
        ShadowingProcess::new(
            ShadowingConfig {
                sigma_db: sigma,
                decorrelation_time_s: tau,
            },
            StreamRng::from_seed_u64(seed),
        )
    }

    #[test]
    fn disabled_shadowing_is_zero() {
        let mut p = ShadowingProcess::new(ShadowingConfig::disabled(), StreamRng::from_seed_u64(1));
        for s in 0..10 {
            assert_eq!(p.sample_db(SimTime::from_secs(s)), 0.0);
        }
    }

    #[test]
    fn stationary_moments_match_sigma() {
        let mut p = process(42, 6.0, 3.5);
        // Sample well beyond the decorrelation time so draws are ~independent.
        let n = 4000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let v = p.sample_db(SimTime::from_secs(i as u64 * 60));
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.5, "mean = {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "std = {}", var.sqrt());
    }

    #[test]
    fn short_interval_samples_are_correlated() {
        // Compare lag-10ms correlation with lag-30s correlation.
        let mut p = process(7, 6.0, 3.5);
        let mut short_diffs = Vec::new();
        let mut t = SimTime::ZERO;
        let mut prev = p.sample_db(t);
        for _ in 0..2000 {
            t += Duration::from_millis(10);
            let v = p.sample_db(t);
            short_diffs.push((v - prev).abs());
            prev = v;
        }
        let mut p = process(7, 6.0, 3.5);
        let mut long_diffs = Vec::new();
        let mut t = SimTime::ZERO;
        let mut prev = p.sample_db(t);
        for _ in 0..2000 {
            t += Duration::from_secs(30);
            let v = p.sample_db(t);
            long_diffs.push((v - prev).abs());
            prev = v;
        }
        let short_mean: f64 = short_diffs.iter().sum::<f64>() / short_diffs.len() as f64;
        let long_mean: f64 = long_diffs.iter().sum::<f64>() / long_diffs.len() as f64;
        assert!(
            short_mean * 3.0 < long_mean,
            "10ms steps should change much less than 30s steps ({short_mean} vs {long_mean})"
        );
    }

    #[test]
    fn process_is_deterministic_per_seed() {
        let mut a = process(9, 6.0, 3.5);
        let mut b = process(9, 6.0, 3.5);
        for i in 0..100 {
            let t = SimTime::from_millis(i * 137);
            assert_eq!(a.sample_db(t), b.sample_db(t));
        }
    }

    #[test]
    fn sampling_backwards_does_not_evolve() {
        let mut p = process(3, 6.0, 3.5);
        let v1 = p.sample_db(SimTime::from_secs(10));
        let v2 = p.sample_db(SimTime::from_secs(5));
        let v3 = p.sample_db(SimTime::from_secs(10));
        assert_eq!(v1, v2);
        assert_eq!(v1, v3);
        assert_eq!(p.current_db(), v1);
    }

    #[test]
    fn default_config_is_macroscopic() {
        let c = ShadowingConfig::default();
        assert!(c.decorrelation_time_s >= 2.0 && c.decorrelation_time_s <= 5.0);
        assert!(c.sigma_db > 0.0);
    }
}
