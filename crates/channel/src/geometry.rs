//! Field geometry: node positions and the deployment area.
//!
//! The paper deploys 100 nodes in a square field (Table II) with the sink /
//! cluster heads inside the field.  Positions are two-dimensional; distances
//! feed the path-loss model.

use caem_simcore::rng::StreamRng;
use serde::{Deserialize, Serialize};

/// A point in the deployment field, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Create a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root for comparisons).
    pub fn distance_sq_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between two positions.
    pub fn midpoint(&self, other: &Position) -> Position {
        Position::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// A rectangular deployment field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Width in metres.
    pub width: f64,
    /// Height in metres.
    pub height: f64,
}

impl Field {
    /// Create a field of the given dimensions (metres).
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "field must have positive area");
        Field { width, height }
    }

    /// The 100 m × 100 m field used throughout the paper's evaluation.
    pub fn paper_default() -> Self {
        Field::new(100.0, 100.0)
    }

    /// Centre of the field (typical base-station location).
    pub fn center(&self) -> Position {
        Position::new(self.width / 2.0, self.height / 2.0)
    }

    /// Field area in square metres.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// The longest possible link distance inside the field (the diagonal).
    pub fn diagonal(&self) -> f64 {
        (self.width * self.width + self.height * self.height).sqrt()
    }

    /// Is `p` inside the field (inclusive of the boundary)?
    pub fn contains(&self, p: &Position) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x <= self.width && p.y <= self.height
    }

    /// Clamp a position onto the field.
    pub fn clamp(&self, p: Position) -> Position {
        Position::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// Sample a uniformly random position inside the field.
    pub fn random_position(&self, rng: &mut StreamRng) -> Position {
        Position::new(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))
    }

    /// Sample `n` uniformly random positions (the paper's random deployment).
    pub fn random_deployment(&self, n: usize, rng: &mut StreamRng) -> Vec<Position> {
        (0..n).map(|_| self.random_position(rng)).collect()
    }

    /// Deploy `n` nodes in Gaussian hotspot clusters: `clusters` centre
    /// points are drawn uniformly in the field, then nodes are assigned to
    /// centres round-robin and scattered around them with isotropic normal
    /// offsets of standard deviation `sigma` metres (clamped to the field).
    ///
    /// Models event-driven deployments where sensing density concentrates
    /// around phenomena of interest instead of covering the field uniformly.
    pub fn gaussian_cluster_deployment(
        &self,
        n: usize,
        clusters: usize,
        sigma: f64,
        rng: &mut StreamRng,
    ) -> Vec<Position> {
        assert!(clusters > 0, "need at least one hotspot cluster");
        assert!(sigma >= 0.0, "cluster spread must be non-negative");
        let centers: Vec<Position> = (0..clusters).map(|_| self.random_position(rng)).collect();
        (0..n)
            .map(|i| {
                let c = centers[i % clusters];
                let p = Position::new(
                    c.x + sigma * rng.standard_normal(),
                    c.y + sigma * rng.standard_normal(),
                );
                self.clamp(p)
            })
            .collect()
    }

    /// Deploy `n` nodes uniformly inside a horizontal corridor spanning the
    /// full width of the field and `width_fraction` of its height, centred
    /// vertically — the pipeline / road / border-line monitoring geometry.
    pub fn corridor_deployment(
        &self,
        n: usize,
        width_fraction: f64,
        rng: &mut StreamRng,
    ) -> Vec<Position> {
        assert!(
            width_fraction > 0.0 && width_fraction <= 1.0,
            "corridor width fraction must be in (0, 1]"
        );
        let band = self.height * width_fraction;
        let y0 = (self.height - band) / 2.0;
        (0..n)
            .map(|_| Position::new(rng.uniform(0.0, self.width), y0 + rng.uniform(0.0, band)))
            .collect()
    }

    /// Place `n` nodes on a jittered grid — a deterministic but realistic
    /// alternative deployment used by some examples and ablations.
    pub fn grid_deployment(&self, n: usize, jitter: f64, rng: &mut StreamRng) -> Vec<Position> {
        if n == 0 {
            return Vec::new();
        }
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let dx = self.width / cols as f64;
        let dy = self.height / rows as f64;
        let mut out = Vec::with_capacity(n);
        'outer: for r in 0..rows {
            for c in 0..cols {
                if out.len() >= n {
                    break 'outer;
                }
                let base = Position::new((c as f64 + 0.5) * dx, (r as f64 + 0.5) * dy);
                let jittered = Position::new(
                    base.x + rng.uniform(-jitter, jitter),
                    base.y + rng.uniform(-jitter, jitter),
                );
                out.push(self.clamp(jittered));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::rng::StreamRng;

    #[test]
    fn distance_math() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq_to(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.midpoint(&b), Position::new(1.5, 2.0));
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn paper_field_dimensions() {
        let f = Field::paper_default();
        assert_eq!(f.area(), 10_000.0);
        assert_eq!(f.center(), Position::new(50.0, 50.0));
        assert!((f.diagonal() - 141.42135).abs() < 1e-4);
    }

    #[test]
    fn contains_and_clamp() {
        let f = Field::new(10.0, 20.0);
        assert!(f.contains(&Position::new(0.0, 0.0)));
        assert!(f.contains(&Position::new(10.0, 20.0)));
        assert!(!f.contains(&Position::new(10.1, 5.0)));
        assert!(!f.contains(&Position::new(5.0, -0.1)));
        assert_eq!(f.clamp(Position::new(-3.0, 25.0)), Position::new(0.0, 20.0));
    }

    #[test]
    fn random_deployment_stays_in_field() {
        let f = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(1);
        let nodes = f.random_deployment(100, &mut rng);
        assert_eq!(nodes.len(), 100);
        assert!(nodes.iter().all(|p| f.contains(p)));
        // Not all identical.
        assert!(nodes.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn random_deployment_is_deterministic_per_seed() {
        let f = Field::paper_default();
        let a = f.random_deployment(10, &mut StreamRng::from_seed_u64(7));
        let b = f.random_deployment(10, &mut StreamRng::from_seed_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn grid_deployment_counts_and_bounds() {
        let f = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(3);
        for n in [0usize, 1, 7, 100] {
            let nodes = f.grid_deployment(n, 2.0, &mut rng);
            assert_eq!(nodes.len(), n);
            assert!(nodes.iter().all(|p| f.contains(p)));
        }
    }

    #[test]
    fn gaussian_cluster_deployment_stays_in_field_and_clusters() {
        let f = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(11);
        let nodes = f.gaussian_cluster_deployment(120, 4, 8.0, &mut rng);
        assert_eq!(nodes.len(), 120);
        assert!(nodes.iter().all(|p| f.contains(p)));
        // Hotspots concentrate mass: the mean nearest-neighbour distance must
        // be clearly below the uniform deployment's.
        let mean_nn = |pts: &[Position]| -> f64 {
            pts.iter()
                .enumerate()
                .map(|(i, p)| {
                    pts.iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, q)| p.distance_to(q))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / pts.len() as f64
        };
        let mut rng2 = StreamRng::from_seed_u64(11);
        let uniform = f.random_deployment(120, &mut rng2);
        assert!(mean_nn(&nodes) < mean_nn(&uniform));
    }

    #[test]
    fn corridor_deployment_stays_inside_the_band() {
        let f = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(5);
        let nodes = f.corridor_deployment(80, 0.2, &mut rng);
        assert_eq!(nodes.len(), 80);
        assert!(nodes.iter().all(|p| f.contains(p)));
        // 20% band centred vertically: y in [40, 60].
        assert!(nodes.iter().all(|p| p.y >= 40.0 && p.y <= 60.0));
        // x still spans most of the field.
        let xmin = nodes.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let xmax = nodes.iter().map(|p| p.x).fold(0.0, f64::max);
        assert!(xmax - xmin > 50.0);
    }

    #[test]
    #[should_panic]
    fn corridor_width_fraction_validated() {
        let f = Field::paper_default();
        let mut rng = StreamRng::from_seed_u64(1);
        f.corridor_deployment(10, 0.0, &mut rng);
    }

    #[test]
    #[should_panic]
    fn zero_area_field_rejected() {
        Field::new(0.0, 10.0);
    }
}
