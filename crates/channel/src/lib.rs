//! # caem-channel
//!
//! Realistic time-varying wireless channel model, Section II-B of the paper.
//!
//! The received signal strength between two sensor terminals is governed by
//! three physical effects:
//!
//! * **Path loss** — deterministic attenuation with distance
//!   ([`pathloss`]).
//! * **Shadowing** — log-normal attenuation from terrain/obstructions,
//!   fluctuating on a *macroscopic* time scale of 2–5 s ([`shadowing`]).
//! * **Microscopic fading** — multipath (Rayleigh) fading fluctuating on the
//!   coherence-time scale; for static / <1 m/s sensors the paper states a
//!   coherence time on the order of 100 ms ([`fading`]).
//!
//! [`link::LinkChannel`] composes the three into a per-link SNR (the CSI in
//! the paper), sampled at frame granularity: the paper assumes CSI is
//! constant over at least one frame, and that the tone and data channels are
//! reciprocal (same propagation gain in both directions), which is what lets
//! a sensor estimate the uplink data-channel quality from the downlink tone
//! signal.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fading;
pub mod geometry;
pub mod link;
pub mod pathloss;
pub mod shadowing;

pub use fading::{FadingModel, RayleighFading, RicianFading};
pub use geometry::{Field, Position};
pub use link::{LinkBudget, LinkChannel, LinkQualityReport};
pub use pathloss::{PathLossModel, LOG_DISTANCE_DEFAULT_EXPONENT};
pub use shadowing::ShadowingProcess;

/// Convert a linear power ratio to decibels.
pub fn lin_to_db(linear: f64) -> f64 {
    10.0 * linear.max(f64::MIN_POSITIVE).log10()
}

/// Convert decibels to a linear power ratio.
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert power in watts to dBm.
pub fn watts_to_dbm(watts: f64) -> f64 {
    lin_to_db(watts * 1e3)
}

/// Convert dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    db_to_lin(dbm) / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trips() {
        for v in [0.001, 0.5, 1.0, 2.0, 100.0] {
            let db = lin_to_db(v);
            assert!((db_to_lin(db) - v).abs() / v < 1e-12);
        }
    }

    #[test]
    fn dbm_conversions() {
        assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-9);
        assert!((watts_to_dbm(0.001) - 0.0).abs() < 1e-9);
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-9);
        assert!((dbm_to_watts(0.0) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn lin_to_db_handles_zero() {
        // Zero power maps to a very large negative dB value, not NaN/-inf panic.
        let db = lin_to_db(0.0);
        assert!(db.is_finite());
        assert!(db < -3000.0);
    }
}
