//! Wire-protocol contracts of the experiment service.
//!
//! Three properties pin the protocol down:
//!
//! 1. **Round trip**: `decode ∘ encode` is the identity on every message
//!    variant — asserted on the re-encoded bytes, which is stronger than
//!    structural equality (it also pins the canonical field order the
//!    daemon's duplicate-request cache compares against).
//! 2. **Totality**: torn frames, truncated payloads, flipped bytes,
//!    oversized length prefixes and unknown message types all decode to a
//!    *typed* [`ProtoError`], never a panic.
//! 3. **Merge invariance**: record batches that arrive duplicated and
//!    reordered (the exact artefacts of retransmission after dropped
//!    frames) aggregate byte-identically to the canonical single-process
//!    report via `ExperimentReport::from_records`.

use std::sync::OnceLock;

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::distrib::{GridManifest, ManifestJob};
use caem_suite::wsnsim::experiment::{ExperimentReport, ExperimentSpec, ScenarioSpec};
use caem_suite::wsnsim::persist::JobRecord;
use caem_suite::wsnsim::serve::proto::{encode_frame, read_frame};
use caem_suite::wsnsim::serve::{GridProgress, Message, ProtoError, MAX_FRAME_BYTES};
use caem_suite::wsnsim::ScenarioConfig;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Fixtures.
// ---------------------------------------------------------------------------

/// A two-shard manifest over a tiny one-scenario grid; its jobs give the
/// `grant` variant realistic fully-resolved payloads without fabricating a
/// scenario config field by field.
fn tiny_manifest() -> &'static GridManifest {
    static MANIFEST: OnceLock<GridManifest> = OnceLock::new();
    MANIFEST.get_or_init(|| {
        let base = ScenarioConfig::small(PolicyKind::PureLeach, 8.0, 1)
            .with_duration(Duration::from_secs(5));
        let spec = ExperimentSpec::paper_policies(vec![ScenarioSpec::new("tiny", base)], 11, 2);
        GridManifest::from_spec(&spec, 2)
    })
}

/// The tiny grid's simulated records, computed once (simulation is the
/// expensive part; the proptests only permute them).
fn tiny_records() -> &'static Vec<JobRecord> {
    static RECORDS: OnceLock<Vec<JobRecord>> = OnceLock::new();
    RECORDS.get_or_init(|| tiny_manifest().jobs.iter().map(ManifestJob::run).collect())
}

fn text_from(n: u64) -> String {
    // Printable, varied-length strings including JSON-hostile characters.
    let specials = [
        "",
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "new\nline",
        "ünïcode",
    ];
    format!("{}_{n}", specials[(n % specials.len() as u64) as usize])
}

/// Deterministically build one of every message variant from a handful of
/// sampled knobs.
fn arbitrary_message(choice: u8, a: u64, b: u64, flag: bool) -> Message {
    let seq = a % 1_000 + 1;
    let text = text_from(a ^ b);
    match choice % 20 {
        0 => Message::Hello {
            seq,
            protocol: b % 5,
            worker: text,
            threads: b % 64,
            expect_hash: flag.then_some(b),
        },
        1 => Message::HelloAck {
            seq,
            heartbeat_ms: a,
            lease_ttl_ms: b,
        },
        2 => Message::Reject { seq, reason: text },
        3 => Message::Claim { seq },
        4 => Message::Grant {
            seq,
            grid: a,
            shard: b % 16,
            jobs: tiny_manifest().jobs[..(b % 4) as usize].to_vec(),
        },
        5 => Message::NoWork {
            seq,
            retry_ms: b % 5_000,
        },
        6 => Message::Records {
            grid: a,
            shard: b % 16,
            lines: (0..b % 4).map(|i| text_from(a + i)).collect(),
        },
        7 => Message::Heartbeat {
            grid: a,
            shard: b % 16,
        },
        8 => Message::ShardDone {
            seq,
            grid: a,
            shard: b % 16,
            sent: b,
        },
        9 => Message::DoneAck { seq },
        10 => Message::DoneNack { seq, received: b },
        11 => Message::Release {
            seq,
            grid: a,
            shard: b % 16,
        },
        12 => Message::ReleaseAck { seq },
        13 => Message::Submit {
            seq,
            spec: text,
            quick: flag,
            seed: b,
        },
        14 => Message::SubmitAck {
            seq,
            grid: a,
            name: text,
            jobs: b,
        },
        15 => Message::SubmitErr { seq, reason: text },
        16 => Message::Status { seq },
        17 => Message::StatusReply {
            seq,
            queued: a % 9,
            active: flag.then(|| GridProgress {
                name: text.clone(),
                jobs: b,
                settled: b / 2,
                quarantined: b % 3,
                shards_done: a % 8,
                shard_count: 8,
            }),
            completed: a % 5,
            workers: b % 7,
            events: flag.then(|| format!("{text} events")),
        },
        18 => Message::Fetch { seq },
        _ => Message::FetchReply {
            seq,
            ready: flag,
            report: text,
        },
    }
}

// ---------------------------------------------------------------------------
// 1. Round trip.
// ---------------------------------------------------------------------------

proptest! {
    /// Every variant survives encode → decode → encode with identical
    /// bytes, and the decoded message keeps its kind and sequence number.
    #[test]
    fn every_message_round_trips_byte_identically(
        choice in 0u8..255,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        flag in any::<bool>(),
    ) {
        let msg = arbitrary_message(choice, a, b, flag);
        let bytes = msg.encode();
        let decoded = Message::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded.kind(), msg.kind());
        prop_assert_eq!(decoded.seq(), msg.seq());
        prop_assert_eq!(decoded.encode(), bytes);
    }
}

#[test]
fn all_twenty_variants_are_covered_by_the_generator() {
    let mut kinds: Vec<&'static str> = (0..20)
        .map(|choice| arbitrary_message(choice, 3, 7, true).kind())
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), 20, "one distinct kind per generator choice");
}

// ---------------------------------------------------------------------------
// 2. Totality on garbage.
// ---------------------------------------------------------------------------

proptest! {
    /// Any prefix of a valid frame fails with a *typed* error: empty input
    /// is `Closed`, anything cut short is `Torn`, and only the full frame
    /// decodes.  Never a panic, never a bogus success.
    #[test]
    fn torn_frames_yield_typed_errors(
        choice in 0u8..255,
        a in 0u64..10_000,
        cut in 0usize..2_000,
    ) {
        let msg = arbitrary_message(choice, a, a / 3, a % 2 == 0);
        let frame = encode_frame(&msg.encode());
        let cut = cut % (frame.len() + 1);
        let mut reader = &frame[..cut];
        match read_frame(&mut reader) {
            Ok(payload) => {
                prop_assert_eq!(cut, frame.len(), "only the complete frame decodes");
                prop_assert_eq!(payload, msg.encode());
            }
            Err(ProtoError::Closed) => prop_assert_eq!(cut, 0),
            Err(ProtoError::Torn { expected, got }) => {
                prop_assert!(cut < frame.len());
                prop_assert!(got < expected);
            }
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Truncating or corrupting a message payload never panics the
    /// decoder: it either still decodes (a benign flip) or reports
    /// `Malformed`.
    #[test]
    fn corrupt_payloads_decode_to_malformed_not_panic(
        choice in 0u8..255,
        a in 0u64..10_000,
        cut in 0usize..2_000,
        flip in 0usize..2_000,
        bit in 0u8..8,
    ) {
        let msg = arbitrary_message(choice, a, a.wrapping_mul(31), a % 3 == 0);
        let bytes = msg.encode();

        let truncated = &bytes[..cut % (bytes.len() + 1)];
        if truncated.len() < bytes.len() {
            match Message::decode(truncated) {
                Err(ProtoError::Malformed(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error class: {other}"),
                Ok(_) => prop_assert!(false, "a strict JSON prefix cannot decode"),
            }
        }

        let mut flipped = bytes.clone();
        let at = flip % flipped.len();
        flipped[at] ^= 1 << bit;
        match Message::decode(&flipped) {
            Ok(_) | Err(ProtoError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}

#[test]
fn oversize_length_prefixes_are_rejected_without_allocating() {
    let mut frame = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(b"irrelevant");
    let mut reader = &frame[..];
    match read_frame(&mut reader) {
        Err(ProtoError::Oversize { len }) => assert_eq!(len, MAX_FRAME_BYTES + 1),
        other => panic!("expected Oversize, got {other:?}"),
    }
}

#[test]
fn unknown_types_and_non_utf8_are_malformed() {
    for payload in [
        &b"{\"type\":\"warp_core\",\"seq\":1}"[..],
        b"{\"seq\":1}",
        b"{\"type\":\"claim\"}",
        b"not json at all",
        b"\xff\xfe\x00garbage",
        b"",
    ] {
        match Message::decode(payload) {
            Err(ProtoError::Malformed(_)) => {}
            other => panic!("{payload:?} should be Malformed, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Merge invariance under duplication + reordering.
// ---------------------------------------------------------------------------

proptest! {
    /// However retransmission duplicates and reorders the record stream —
    /// the exact artefacts of the resend-after-`DoneNack` recovery — the
    /// canonical aggregation produces byte-identical reports.
    #[test]
    fn duplicated_reordered_record_batches_merge_byte_identically(
        rotation in 0usize..64,
        dup_mask in 0u64..u64::MAX,
        stride in 1usize..7,
    ) {
        let records = tiny_records();
        let canonical = ExperimentReport::from_records(records.clone());
        let canonical_bytes =
            serde_json::to_string_pretty(&canonical.to_json()).expect("report renders");

        // Ship every record as its wire line, rotate the order, interleave
        // by stride and duplicate a mask-chosen subset (a resent batch).
        let lines: Vec<String> = records
            .iter()
            .map(|r| serde_json::to_string(r).expect("record serializes"))
            .collect();
        let mut shipped: Vec<String> = Vec::new();
        let n = lines.len();
        for i in 0..n {
            let at = (i * stride + rotation) % n;
            shipped.push(lines[at].clone());
            if dup_mask & (1 << (at % 64)) != 0 {
                shipped.push(lines[at].clone());
            }
        }
        // Stride-interleaving can skip indices; top up so every job is
        // present at least once (the protocol guarantees delivery by
        // count reconciliation before a shard settles).
        shipped.extend(lines.iter().cloned());

        let decoded: Vec<JobRecord> = shipped
            .iter()
            .map(|line| serde_json::from_str(line).expect("line decodes"))
            .collect();
        let merged = ExperimentReport::from_records(decoded);
        let merged_bytes =
            serde_json::to_string_pretty(&merged.to_json()).expect("report renders");
        prop_assert_eq!(merged_bytes, canonical_bytes);
    }
}
