//! Determinism guarantees the evaluation methodology rests on.
//!
//! The figure sweeps fan independent simulations out across a thread pool;
//! common-random-numbers comparisons are only valid if that parallelism
//! cannot perturb any result.  These tests pin the guarantee: a parallel
//! `load_sweep` must be *bit-identical* to a serial run of the same seeds,
//! and re-running the optimized engine on one seed must reproduce itself
//! exactly.

use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::sweep::{load_sweep, LoadSweepPoint, PAPER_POLICIES};
use caem_suite::wsnsim::{ScenarioConfig, SimulationResult};

/// Every observable of one run, with floats captured bit-exactly.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    generated: u64,
    delivered: u64,
    bursts: u64,
    collisions: u64,
    events_processed: u64,
    end_time_nanos: u64,
    ledger_total_bits: u64,
    avg_delay_bits: u64,
    per_node: Vec<(u64, u64, u64, u64)>,
}

fn fingerprint(r: &SimulationResult) -> Fingerprint {
    Fingerprint {
        generated: r.perf.generated(),
        delivered: r.perf.delivered(),
        bursts: r.bursts,
        collisions: r.collisions,
        events_processed: r.events_processed,
        end_time_nanos: r.end_time.as_nanos(),
        ledger_total_bits: r.ledger.total().to_bits(),
        avg_delay_bits: r.perf.average_delay_ms().to_bits(),
        per_node: r
            .nodes
            .iter()
            .map(|n| {
                (
                    n.generated,
                    n.delivered,
                    n.dropped,
                    n.remaining_energy_j.to_bits(),
                )
            })
            .collect(),
    }
}

fn sweep_fingerprints(points: &[LoadSweepPoint]) -> Vec<Fingerprint> {
    points
        .iter()
        .flat_map(|p| {
            PAPER_POLICIES
                .iter()
                .map(|&policy| fingerprint(p.comparison.get(policy)))
        })
        .collect()
}

fn run_sweep() -> Vec<LoadSweepPoint> {
    load_sweep(&[5.0, 12.0], |policy, load| {
        ScenarioConfig::small(policy, load, 424242).with_duration(Duration::from_secs(25))
    })
}

#[test]
fn load_sweep_is_bit_identical_serial_vs_parallel() {
    // Parallel pass first (default thread budget)...
    let parallel = sweep_fingerprints(&run_sweep());
    // ...then force the sweep through a single worker and compare.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = sweep_fingerprints(&run_sweep());
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(
        parallel, serial,
        "parallel and serial sweeps must agree bit-for-bit (common random numbers)"
    );
    // Sanity: the sweep actually simulated something.
    assert!(parallel
        .iter()
        .all(|f| f.generated > 0 && f.events_processed > 0));
}

#[test]
fn identical_seeds_reproduce_bit_identical_runs() {
    let run = |seed: u64| {
        let cfg = ScenarioConfig::small(
            caem_suite::caem::policy::PolicyKind::Scheme1Adaptive,
            8.0,
            seed,
        )
        .with_duration(Duration::from_secs(30));
        fingerprint(&caem_suite::wsnsim::SimulationRun::new(cfg).run())
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds must not collide");
}
