//! Cross-layer integration tests below the full simulator: channel + PHY +
//! MAC components wired together the way the runner wires them.

use caem_suite::channel::link::{LinkBudget, LinkChannel};
use caem_suite::channel::pathloss::PathLossModel;
use caem_suite::channel::shadowing::ShadowingConfig;
use caem_suite::channel::{Field, Position};
use caem_suite::cluster::election::{ElectionConfig, LeachElection};
use caem_suite::cluster::formation::ClusterFormation;
use caem_suite::mac::sensor::{SensorAction, SensorMac, SensorMacConfig};
use caem_suite::mac::tone::{ChannelState, ToneSignal};
use caem_suite::phy::ber::packet_error_rate;
use caem_suite::phy::frame::FrameSpec;
use caem_suite::phy::mode::TransmissionMode;
use caem_suite::simcore::rng::{components, RngStream, StreamRng};
use caem_suite::simcore::time::{Duration, SimTime};

fn make_link(distance: f64, seed: u64) -> LinkChannel {
    let streams = RngStream::new(seed);
    LinkChannel::with_distance(
        distance,
        LinkBudget::paper_default(),
        PathLossModel::paper_default(),
        ShadowingConfig::default(),
        streams.derive(components::SHADOWING, 0),
        streams.derive(components::FADING, 0),
    )
}

#[test]
fn good_links_deliver_at_their_selected_mode() {
    // Sample a short link repeatedly; whenever a mode is selected for the
    // measured SNR, the packet error rate at that SNR must be usable.
    let mut link = make_link(12.0, 3);
    let frame = FrameSpec::paper_default();
    let mut usable = 0;
    for i in 0..500 {
        let snr = link.snr_db(SimTime::from_millis(i * 120));
        if let Some(mode) = TransmissionMode::best_for_snr(snr) {
            let per =
                packet_error_rate(mode.modulation(), mode.code_rate(), snr, frame.payload_bits);
            assert!(
                per < 0.12,
                "mode {mode} selected at {snr:.1} dB but PER = {per}"
            );
            usable += 1;
        }
    }
    assert!(usable > 450, "a 12 m link should almost always be usable");
}

#[test]
fn waiting_for_a_better_channel_reduces_airtime() {
    // The CAEM premise quantified end to end: on a mid-distance link, the
    // airtime of packets sent only when the 2 Mbps threshold is met is
    // strictly smaller than the airtime of packets sent unconditionally.
    let frame = FrameSpec::paper_default();
    let mut link = make_link(40.0, 7);
    let mut unconditional = Duration::ZERO;
    let mut unconditional_count = 0u64;
    let mut thresholded = Duration::ZERO;
    let mut thresholded_count = 0u64;
    for i in 0..5_000u64 {
        let snr = link.snr_db(SimTime::from_millis(i * 150));
        if let Some(mode) = TransmissionMode::best_for_snr(snr) {
            unconditional += frame.airtime(mode);
            unconditional_count += 1;
            if mode == TransmissionMode::Mbps2 {
                thresholded += frame.airtime(mode);
                thresholded_count += 1;
            }
        }
    }
    assert!(unconditional_count > 0 && thresholded_count > 0);
    let avg_uncond = unconditional.as_secs_f64() / unconditional_count as f64;
    let avg_thresh = thresholded.as_secs_f64() / thresholded_count as f64;
    assert!(
        avg_thresh < avg_uncond,
        "thresholded airtime {avg_thresh} should beat unconditional {avg_uncond}"
    );
}

#[test]
fn mac_driven_by_real_channel_measurements_transmits_eventually() {
    // Drive the sensor MAC with CSI from a real fading link and an idle
    // channel; with the Scheme 2 threshold it must eventually transmit, and
    // never before the measured SNR satisfies the threshold.
    let mut link = make_link(30.0, 11);
    let mut mac = SensorMac::new(SensorMacConfig::default(), StreamRng::from_seed_u64(5));
    let threshold = TransmissionMode::Mbps2.required_snr_db();
    assert_eq!(mac.packets_pending(6), SensorAction::StartSensing);
    let mut transmitted = false;
    let mut t = SimTime::ZERO;
    for _ in 0..20_000 {
        t += Duration::from_millis(50);
        let snr = link.snr_db(t);
        let signal = Some(ToneSignal {
            state: ChannelState::Idle,
            tone_snr_db: snr,
        });
        match mac.observe_tone(signal, threshold, 6, false) {
            SensorAction::StartBackoff(d) => {
                assert!(snr >= threshold, "backoff started below the threshold");
                t += d;
                let snr2 = link.snr_db(t);
                let signal2 = Some(ToneSignal {
                    state: ChannelState::Idle,
                    tone_snr_db: snr2,
                });
                if let SensorAction::StartTransmission { burst_size } =
                    mac.backoff_expired(signal2, threshold, 6, false)
                {
                    assert!((1..=8).contains(&burst_size));
                    transmitted = true;
                    break;
                }
            }
            SensorAction::None => {}
            other => panic!("unexpected action {other:?}"),
        }
    }
    assert!(transmitted, "a 30 m link should eventually satisfy 2 Mbps");
}

#[test]
fn leach_plus_formation_covers_every_live_node() {
    let field = Field::paper_default();
    let streams = RngStream::new(21);
    let mut placement = streams.derive(components::PLACEMENT, 0);
    let positions: Vec<Position> = field.random_deployment(60, &mut placement);
    let mut election = LeachElection::new(60, ElectionConfig::default());
    let mut rng = streams.derive(components::ELECTION, 0);
    let mut alive = vec![true; 60];
    for round in 0..40 {
        // Kill a couple of nodes along the way.
        if round == 10 {
            alive[3] = false;
            alive[40] = false;
        }
        let heads = election.elect_round(&alive, &mut rng);
        assert!(!heads.is_empty());
        let formation = ClusterFormation::nearest_head(&positions, &heads, &alive);
        for (node, &is_alive) in alive.iter().enumerate() {
            if is_alive {
                let head = formation.head_of(node).expect("live node must have a head");
                assert!(alive[head], "assigned head must be alive");
            } else {
                assert_eq!(formation.head_of(node), None);
            }
        }
    }
}
