//! Declarative-spec contracts: parse → resolve → re-serialize → re-parse is
//! a fixed point that preserves the persist config hashes (property-tested
//! over randomly generated documents), and every malformed-spec class —
//! unknown field, wrong type, out-of-range value, conflicting axes,
//! duplicate entries, empty axes, bad version — yields its own distinct
//! typed `ConfigError` variant carrying the offending field's path.

use caem_suite::wsnsim::config::ConfigError;
use caem_suite::wsnsim::persist::config_hash;
use caem_suite::wsnsim::spec::{
    DistribSpec, GridQuick, GridSpec, ScenarioQuick, ScenarioSpecDoc, SeedAxis, SequentialSpec,
    TrafficSpec,
};
use caem_suite::wsnsim::Topology;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Random valid documents for the fixed-point property.
// ---------------------------------------------------------------------------

fn arbitrary_topology(choice: u8, a: f64, b: u8) -> Option<Topology> {
    match choice % 5 {
        0 => None,
        1 => Some(Topology::Uniform),
        2 => Some(Topology::Grid { jitter_m: a }),
        3 => Some(Topology::GaussianClusters {
            clusters: 1 + (b % 6) as usize,
            sigma_m: a,
        }),
        _ => Some(Topology::Corridor {
            // Strictly inside (0, 1].
            width_fraction: (0.05 + (a / 25.0) * 0.9).min(1.0),
        }),
    }
}

fn arbitrary_scenario(i: usize, knobs: (u8, f64, u8, f64, u8)) -> ScenarioSpecDoc {
    let (topo_choice, magnitude, small, rate, flags) = knobs;
    ScenarioSpecDoc {
        label: format!("scenario_{i}"),
        traffic: match flags % 3 {
            0 => TrafficSpec::Poisson(rate),
            1 => TrafficSpec::Cbr(rate),
            _ => TrafficSpec::Bursty {
                quiet_rate_pps: rate,
                burst_rate_pps: rate * 4.0,
                mean_quiet_s: 5.0 + magnitude,
                mean_burst_s: 1.0 + magnitude / 10.0,
            },
        },
        topology: arbitrary_topology(topo_choice, magnitude, small),
        diurnal: (flags & 0b100 != 0).then_some((10.0 + magnitude * 20.0, 0.8)),
        energy_spread: (flags & 0b1000 != 0).then_some(magnitude / 30.0),
        churn_mttf_s: (flags & 0b1_0000 != 0).then_some(100.0 + magnitude * 100.0),
        node_count: (flags & 0b10_0000 != 0).then_some(10 + small as usize),
        duration_s: (flags & 0b100_0000 != 0).then_some(20.0 + magnitude),
        buffer_capacity: match flags % 5 {
            0 => Some(None), // explicitly unbounded
            1 => Some(Some(10 + small as usize)),
            _ => None,
        },
        initial_energy_j: (flags & 0b1000_0000 != 0).then_some(1.0 + magnitude),
        quick: if small % 2 == 0 {
            ScenarioQuick::default()
        } else {
            ScenarioQuick {
                churn_mttf_s: (flags & 0b1_0000 != 0).then_some(50.0 + magnitude * 10.0),
                diurnal: None,
                duration_s: Some(10.0 + magnitude / 2.0),
                node_count: Some(8 + (small % 16) as usize),
            }
        },
    }
}

proptest! {
    /// parse ∘ to_json is the identity on documents, and the resolved
    /// configs — hence the persist config hashes keyed on them — are
    /// preserved across the round trip, in both full and quick mode.
    #[test]
    fn serialize_parse_is_a_fixed_point_preserving_config_hashes(
        scenario_count in 1usize..4,
        topo_choice in 0u8..255,
        magnitude in 0.5f64..25.0,
        small in 0u8..255,
        rate in 0.5f64..20.0,
        flags in 0u8..255,
        replicate_style in 0u8..4,
        seed in 0u64..1_000_000,
    ) {
        let scenarios: Vec<ScenarioSpecDoc> = (0..scenario_count)
            .map(|i| arbitrary_scenario(
                i,
                (topo_choice.wrapping_add(i as u8), magnitude + i as f64, small.wrapping_mul(i as u8 + 1), rate + i as f64, flags.wrapping_add(37 * i as u8)),
            ))
            .collect();
        let spec = GridSpec {
            name: (flags % 2 == 0).then(|| "prop".to_string()),
            base_seed: (replicate_style != 3).then_some(seed),
            seeds: if replicate_style == 3 {
                SeedAxis::Explicit(vec![seed, seed + 7, seed + 13])
            } else {
                SeedAxis::Replicates(1 + replicate_style as usize)
            },
            duration_s: (flags % 3 == 0).then_some(30.0 + magnitude),
            node_count: (flags % 5 == 0).then_some(12 + (small % 32) as usize),
            policies: None,
            scenarios,
            sequential: (flags % 4 == 0).then(|| SequentialSpec {
                metric: "delivery_rate".to_string(),
                target_half_width: magnitude / 100.0,
                batch: (small % 2 == 0).then_some(2),
                max_replicates: 64,
            }),
            distrib: (flags % 7 == 0).then(|| DistribSpec {
                lease_ttl_s: Some(30.0 + magnitude),
                heartbeat_s: (small % 2 == 0).then_some(2.0 + magnitude / 10.0),
            }),
            quick: if small % 3 == 0 {
                GridQuick::default()
            } else {
                GridQuick {
                    // A quick replicate count conflicts with an explicit
                    // seed list (the list is the axis in both modes).
                    replicates: (replicate_style != 3).then_some(1 + (small % 3) as usize),
                    node_count: Some(8 + (small % 8) as usize),
                    duration_s: Some(10.0 + magnitude / 3.0),
                }
            },
        };

        let text = serde_json::to_string_pretty(&spec.to_json()).expect("serializes");
        let reparsed = GridSpec::parse(&text).expect("canonical text re-parses");
        prop_assert_eq!(&reparsed, &spec, "parse ∘ serialize must be the identity");

        // The double round trip is also a fixed point at the *text* level.
        let text2 = serde_json::to_string_pretty(&reparsed.to_json()).expect("serializes");
        prop_assert_eq!(&text2, &text);

        // Resolution is deterministic and hash-preserving across the trip.
        for quick in [false, true] {
            let a = spec.resolve(42, quick).expect("valid by construction");
            let b = reparsed.resolve(42, quick).expect("valid by construction");
            prop_assert_eq!(a.spec.seeds, b.spec.seeds);
            prop_assert_eq!(a.spec.policies, b.spec.policies);
            prop_assert_eq!(a.spec.scenarios.len(), b.spec.scenarios.len());
            for (sa, sb) in a.spec.scenarios.iter().zip(&b.spec.scenarios) {
                prop_assert_eq!(&sa.label, &sb.label);
                prop_assert_eq!(config_hash(&sa.base), config_hash(&sb.base));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Golden malformed-spec classes → distinct typed error variants.
// ---------------------------------------------------------------------------

fn wrap(scenarios_body: &str) -> String {
    format!("{{ \"caem_grid_spec\": 1, \"replicates\": 2, \"scenarios\": [{scenarios_body}] }}")
}

#[test]
fn unknown_fields_are_rejected_at_every_level() {
    // Top level.
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2, "replicats": 3,
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::UnknownField {
            path: "replicats".to_string()
        }
    );
    // Scenario level, with the array index in the path.
    let err = GridSpec::parse(&wrap(
        r#"{ "label": "a", "rate_pps": 5.0, "chrun_mttf_s": 7.0 }"#,
    ))
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::UnknownField {
            path: "scenarios[0].chrun_mttf_s".to_string()
        }
    );
    // Nested topology object.
    let err = GridSpec::parse(&wrap(
        r#"{ "label": "a", "rate_pps": 5.0, "topology": { "grid": { "jitter_m": 1.0, "jitterm": 2.0 } } }"#,
    ))
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::UnknownField {
            path: "scenarios[0].topology.grid.jitterm".to_string()
        }
    );
}

#[test]
fn missing_required_fields_are_typed() {
    let err = GridSpec::parse(r#"{ "caem_grid_spec": 1, "replicates": 2 }"#).unwrap_err();
    assert_eq!(
        err,
        ConfigError::MissingField {
            path: "scenarios".to_string()
        }
    );
    let err = GridSpec::parse(&wrap(r#"{ "rate_pps": 5.0 }"#)).unwrap_err();
    assert_eq!(
        err,
        ConfigError::MissingField {
            path: "scenarios[0].label".to_string()
        }
    );
    let err = GridSpec::parse(&wrap(r#"{ "label": "a" }"#)).unwrap_err();
    assert_eq!(
        err,
        ConfigError::MissingField {
            path: "scenarios[0].rate_pps".to_string()
        }
    );
    // No seed axis at all.
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::MissingField {
            path: "replicates".to_string()
        }
    );
}

#[test]
fn wrong_types_are_typed() {
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": "ten",
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::WrongType {
            path: "replicates".to_string(),
            expected: "non-negative integer"
        }
    );
    let err = GridSpec::parse(&wrap(r#"{ "label": "a", "rate_pps": "fast" }"#)).unwrap_err();
    assert_eq!(
        err,
        ConfigError::WrongType {
            path: "scenarios[0].rate_pps".to_string(),
            expected: "number"
        }
    );
}

#[test]
fn unknown_variants_are_typed() {
    let err = GridSpec::parse(&wrap(
        r#"{ "label": "a", "rate_pps": 5.0, "topology": "ring" }"#,
    ))
    .unwrap_err();
    assert!(
        matches!(
            &err,
            ConfigError::UnknownVariant { path, value, .. }
                if path == "scenarios[0].topology" && value == "ring"
        ),
        "got {err:?}"
    );
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2, "policies": ["PureLeach", "Leach2000"],
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert!(
        matches!(
            &err,
            ConfigError::UnknownVariant { path, value, .. }
                if path == "policies[1]" && value == "Leach2000"
        ),
        "got {err:?}"
    );
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2,
             "sequential": { "metric": "vibes", "target_half_width": 0.1, "max_replicates": 8 },
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert!(
        matches!(
            &err,
            ConfigError::UnknownVariant { path, value, .. }
                if path == "sequential.metric" && value == "vibes"
        ),
        "got {err:?}"
    );
}

#[test]
fn conflicting_axes_are_typed() {
    // replicates vs explicit seeds.
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2, "seeds": [1, 2],
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::ConflictingFields {
            path: "replicates".to_string(),
            other: "seeds".to_string()
        }
    );
    // base_seed is meaningless next to an explicit list.
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "base_seed": 9, "seeds": [1, 2],
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::ConflictingFields {
            path: "base_seed".to_string(),
            other: "seeds".to_string()
        }
    );
    // The rate shorthand vs the full traffic object.
    let err = GridSpec::parse(&wrap(
        r#"{ "label": "a", "rate_pps": 5.0, "traffic": { "cbr": { "rate_pps": 5.0 } } }"#,
    ))
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::ConflictingFields {
            path: "scenarios[0].rate_pps".to_string(),
            other: "scenarios[0].traffic".to_string()
        }
    );
}

#[test]
fn duplicate_entries_are_typed() {
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "seeds": [4, 4],
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::DuplicateEntry {
            path: "seeds".to_string(),
            value: "4".to_string()
        }
    );
    let err = GridSpec::parse(&wrap(
        r#"{ "label": "twin", "rate_pps": 5.0 }, { "label": "twin", "rate_pps": 6.0 }"#,
    ))
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::DuplicateEntry {
            path: "scenarios".to_string(),
            value: "label `twin`".to_string()
        }
    );
    // The same JSON key twice in one object.
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2, "replicates": 3,
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::DuplicateEntry {
            path: "".to_string(),
            value: "`replicates`".to_string()
        }
    );
}

#[test]
fn empty_axes_are_typed() {
    let err = GridSpec::parse(r#"{ "caem_grid_spec": 1, "replicates": 2, "scenarios": [] }"#)
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::EmptyAxis {
            path: "scenarios".to_string()
        }
    );
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2, "policies": [],
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::EmptyAxis {
            path: "policies".to_string()
        }
    );
}

#[test]
fn version_and_value_domain_errors_are_typed() {
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 99, "replicates": 2,
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::UnsupportedVersion {
            path: "caem_grid_spec".to_string(),
            found: 99,
            supported: 1
        }
    );
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 0,
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::NonPositive {
            path: "replicates".to_string(),
            value: 0.0
        }
    );
    // Non-positive lease tuning is rejected with the offending path.
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2,
             "distrib": { "lease_ttl_s": 0.0 },
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::NonPositive {
            path: "distrib.lease_ttl_s".to_string(),
            value: 0.0
        }
    );
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 2,
             "distrib": { "heartbeat_s": -1.5 },
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ConfigError::NonPositive {
            path: "distrib.heartbeat_s".to_string(),
            value: -1.5
        }
    );
    // Out-of-range values surface at resolution, wrapped with the scenario.
    let spec = GridSpec::parse(&wrap(
        r#"{ "label": "bad", "rate_pps": 5.0, "energy_spread": 1.5 }"#,
    ))
    .unwrap();
    let err = spec.resolve(1, false).unwrap_err();
    assert_eq!(
        err,
        ConfigError::OutOfRange {
            path: "initial_energy_spread".to_string(),
            value: 1.5,
            expected: "[0, 1)",
        }
        .in_scenario("bad")
    );
    // A sequential cap below the initial batch can never be honoured.
    let err = GridSpec::parse(
        r#"{ "caem_grid_spec": 1, "replicates": 10,
             "sequential": { "metric": "delivery_rate", "target_half_width": 0.1,
                             "max_replicates": 4 },
             "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
    )
    .unwrap()
    .resolve(1, false)
    .unwrap_err();
    assert!(
        matches!(
            &err,
            ConfigError::OutOfRange { path, .. } if path == "sequential.max_replicates"
        ),
        "got {err:?}"
    );
}

#[test]
fn every_malformed_class_maps_to_a_distinct_variant() {
    // One representative per class: the discriminants must all differ, so a
    // test (or a tool) can dispatch on the class of mistake.
    let cases: Vec<ConfigError> = vec![
        GridSpec::parse(
            r#"{ "caem_grid_spec": 1, "replicates": 2, "mystery": 1,
                 "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
        )
        .unwrap_err(),
        GridSpec::parse(r#"{ "caem_grid_spec": 1, "replicates": 2 }"#).unwrap_err(),
        GridSpec::parse(
            r#"{ "caem_grid_spec": 1, "replicates": true,
                 "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
        )
        .unwrap_err(),
        GridSpec::parse(&wrap(
            r#"{ "label": "a", "rate_pps": 5.0, "topology": "ring" }"#,
        ))
        .unwrap_err(),
        GridSpec::parse(
            r#"{ "caem_grid_spec": 1, "replicates": 2, "seeds": [1],
                 "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
        )
        .unwrap_err(),
        GridSpec::parse(
            r#"{ "caem_grid_spec": 1, "seeds": [3, 3],
                 "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
        )
        .unwrap_err(),
        GridSpec::parse(r#"{ "caem_grid_spec": 1, "replicates": 2, "scenarios": [] }"#)
            .unwrap_err(),
        GridSpec::parse(
            r#"{ "caem_grid_spec": 7, "replicates": 2,
                 "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
        )
        .unwrap_err(),
        GridSpec::parse(
            r#"{ "caem_grid_spec": 1, "replicates": 0,
                 "scenarios": [ { "label": "a", "rate_pps": 5.0 } ] }"#,
        )
        .unwrap_err(),
        GridSpec::parse(&wrap(
            r#"{ "label": "bad", "rate_pps": 5.0, "energy_spread": 1.5 }"#,
        ))
        .unwrap()
        .resolve(1, false)
        .unwrap_err(),
    ];
    let discriminants: Vec<std::mem::Discriminant<ConfigError>> =
        cases.iter().map(std::mem::discriminant).collect();
    let mut unique = discriminants.clone();
    unique.sort_by_key(|d| format!("{d:?}"));
    unique.dedup();
    assert_eq!(
        unique.len(),
        discriminants.len(),
        "every malformed class must surface as its own variant: {cases:#?}"
    );
}
