//! Properties of the fault-injection harness: the backoff schedule is
//! deterministic per seed and bounded, every transient IO error class is
//! retried, fatal errors abort exactly once, and a fault-plan config
//! round-trips through its environment-variable encoding.

use std::io;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use caem_suite::wsnsim::faults::{
    classify_io_error, retry_transient, ErrorClass, FaultPlanConfig, RetryPolicy, FAULT_KINDS,
};
use proptest::prelude::*;

/// A policy that never sleeps, so retry-path tests stay instant.
fn instant_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_delay: Duration::ZERO,
        max_delay: Duration::ZERO,
        ..RetryPolicy::default()
    }
}

/// Every io::Error the harness classifies as transient, by construction.
fn transient_errors() -> Vec<io::Error> {
    vec![
        io::Error::new(io::ErrorKind::Interrupted, "eintr"),
        io::Error::new(io::ErrorKind::WouldBlock, "eagain"),
        io::Error::new(io::ErrorKind::TimedOut, "timeout"),
        io::Error::new(io::ErrorKind::WriteZero, "short write"),
        io::Error::from_raw_os_error(4),  // EINTR
        io::Error::from_raw_os_error(11), // EAGAIN
        io::Error::from_raw_os_error(28), // ENOSPC
    ]
}

/// A representative sample of fatal (non-retryable) errors.
fn fatal_errors() -> Vec<io::Error> {
    vec![
        io::Error::new(io::ErrorKind::PermissionDenied, "eacces"),
        io::Error::new(io::ErrorKind::NotFound, "enoent"),
        io::Error::new(io::ErrorKind::InvalidData, "corrupt"),
        io::Error::from_raw_os_error(13), // EACCES
    ]
}

/// Clone an io::Error closely enough for the classifier (kind + raw errno).
fn reissue(error: &io::Error) -> io::Error {
    match error.raw_os_error() {
        Some(code) => io::Error::from_raw_os_error(code),
        None => io::Error::new(error.kind(), error.to_string()),
    }
}

proptest! {
    /// Equal (seed, attempt) pairs reproduce the identical delay, and no
    /// delay ever exceeds the configured cap — however deep the retry goes.
    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded(
        seed in any::<u64>(),
        base_ms in 1u64..=50,
        cap_ms in 1u64..=500,
    ) {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(cap_ms),
            jitter_seed: seed,
            ..RetryPolicy::default()
        };
        let replay = policy.clone();
        for attempt in 0..64 {
            let delay = policy.backoff_delay(attempt);
            prop_assert_eq!(delay, replay.backoff_delay(attempt));
            prop_assert!(delay <= policy.max_delay);
            prop_assert!(delay > Duration::ZERO);
        }
    }

    /// Different jitter seeds decorrelate: some attempt in the schedule
    /// gets a different delay (the jitter window spans half the ceiling).
    #[test]
    fn backoff_schedules_decorrelate_across_seeds(seed in any::<u64>()) {
        let a = RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() };
        let b = RetryPolicy { jitter_seed: seed ^ 1, ..RetryPolicy::default() };
        prop_assert!(
            (0..64).any(|k| a.backoff_delay(k) != b.backoff_delay(k)),
            "seeds {seed} and {} produced identical schedules", seed ^ 1
        );
    }

    /// A fault-plan config survives the coordinator → worker trip through
    /// its environment-variable encoding, whatever subset of kinds it uses.
    #[test]
    fn fault_plan_config_round_trips(seed in any::<u64>(), mask in 1u64..64) {
        let cfg = FaultPlanConfig {
            seed,
            kinds: FAULT_KINDS
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &k)| k)
                .collect(),
        };
        prop_assert_eq!(FaultPlanConfig::parse(&cfg.env_string()).unwrap(), cfg);
    }
}

#[test]
fn every_transient_error_class_is_retried_to_success() {
    for template in transient_errors() {
        let calls = AtomicU32::new(0);
        let result = retry_transient(&instant_policy(5), |_attempt| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(reissue(&template))
            } else {
                Ok(())
            }
        });
        assert!(result.is_ok(), "{template}: should recover on retry");
        assert_eq!(calls.load(Ordering::SeqCst), 3, "{template}: two retries");
        assert_eq!(classify_io_error(&template), ErrorClass::Transient);
    }
}

#[test]
fn transient_errors_exhaust_the_attempt_budget_then_surface() {
    for template in transient_errors() {
        let calls = AtomicU32::new(0);
        let result: io::Result<()> = retry_transient(&instant_policy(4), |_attempt| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(reissue(&template))
        });
        assert!(result.is_err(), "{template}: persistent failure surfaces");
        assert_eq!(
            calls.load(Ordering::SeqCst),
            4,
            "{template}: every budgeted attempt was used"
        );
    }
}

#[test]
fn fatal_errors_abort_exactly_once() {
    for template in fatal_errors() {
        let calls = AtomicU32::new(0);
        let result: io::Result<()> = retry_transient(&instant_policy(5), |_attempt| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(reissue(&template))
        });
        assert!(result.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1, "{template}: no retry");
        assert_eq!(classify_io_error(&template), ErrorClass::Fatal);
    }
}

#[test]
fn malformed_fault_plan_specs_are_rejected() {
    for bad in [
        "",
        "11",
        ":kill",
        "seed:kill",
        "11:",
        "11:bogus",
        "11:kill+",
        "11:kill+bogus",
    ] {
        assert!(
            FaultPlanConfig::parse(bad).is_err(),
            "{bad:?} should not parse"
        );
    }
}
