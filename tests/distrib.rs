//! Contract tests for the multi-process distributed experiment runner.
//!
//! The distribution layer promises exactly one thing on top of the engine:
//! **the execution topology is unobservable in the results**.  One worker,
//! N workers, workers killed mid-grid, a coordinator killed and restarted,
//! shards stolen off stale leases, worker stores merged in any discovery
//! order — every path must reproduce the single-process
//! [`ExperimentSpec::run`] report bit for bit.  These tests drive the real
//! claim protocol (the same lease files and steals worker processes use)
//! through in-process worker threads, which share the filesystem bus with
//! the `--worker-shard` binary mode exercised by the CI smoke job.

use std::path::PathBuf;
use std::time::Duration as StdDuration;

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::distrib::{
    collect_grid_records, merge_grid_report, run_sequential_distributed, run_worker, DistribError,
    DistribOptions, GridManifest, ShardLayout, ThreadSpawner, WorkerConfig,
};
use caem_suite::wsnsim::experiment::{
    ExperimentReport, ExperimentSpec, ScenarioSpec, SequentialStopping,
};
use caem_suite::wsnsim::persist::ExperimentStore;
use caem_suite::wsnsim::sweep::load_sweep_spec;
use caem_suite::wsnsim::{ScenarioConfig, Topology};

fn temp_grid(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("caem_distrib_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&path).ok();
    path
}

/// The report serialized to canonical JSON text: string equality is
/// bit-level equality of every aggregated float.
fn report_bits(report: &ExperimentReport) -> String {
    serde_json::to_string(&report.to_json()).expect("report serializes")
}

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small(PolicyKind::PureLeach, 8.0, seed).with_duration(Duration::from_secs(10))
}

/// A diverse little grid (18 jobs): two deployment shapes plus the diurnal
/// traffic axis, three policies, two seeds.
fn diverse_spec() -> ExperimentSpec {
    ExperimentSpec::paper_policies(
        vec![
            ScenarioSpec::new("uniform", base(0)),
            ScenarioSpec::new(
                "corridor",
                base(0).with_topology(Topology::Corridor {
                    width_fraction: 0.3,
                }),
            ),
            ScenarioSpec::new("diurnal", base(0).with_diurnal_traffic(7.0, 0.8)),
        ],
        7_300,
        2,
    )
}

fn opts(workers: usize) -> DistribOptions {
    DistribOptions {
        shards_per_worker: 2,
        ..DistribOptions::new(workers)
    }
}

#[test]
fn n_worker_and_single_worker_reports_are_bit_identical_to_run() {
    let spec = diverse_spec();
    let single_process = spec.run();

    for workers in [1, 3] {
        let dir = temp_grid(&format!("identical_{workers}"));
        let report = spec
            .run_distributed(&dir, &opts(workers), &ThreadSpawner::default())
            .expect("distributed run succeeds");
        assert_eq!(
            report, single_process,
            "{workers}-worker report equals ExperimentSpec::run"
        );
        assert_eq!(report_bits(&report), report_bits(&single_process));

        // Every shard is done, and the offline merge of the directory alone
        // reproduces the same cells (its seeds are recovered from records).
        let layout = ShardLayout::new(&dir);
        let manifest = GridManifest::load(&layout).expect("manifest exists");
        assert!(layout.all_done(manifest.shard_count));
        let offline = merge_grid_report(&dir).expect("offline merge");
        assert_eq!(offline.cells, single_process.cells);
        assert_eq!(offline.job_count, spec.job_count());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn killed_workers_and_coordinator_restart_still_reproduce_the_report() {
    let spec = diverse_spec();
    let single_process = spec.run();
    let dir = temp_grid("kill_restart");

    // Phase 1 — a "crashed" first attempt: every worker dies after one
    // shard, and we model the coordinator dying with them (no inline
    // completion, no merge): the directory is left with done markers for
    // only some shards and leases for nothing (workers exited cleanly after
    // their first shard) — plus one shard we sabotage below.
    let layout = ShardLayout::new(&dir);
    layout.create_dirs().expect("create layout");
    let manifest = GridManifest::from_spec(&spec, 6);
    manifest.write(&layout).expect("write manifest");
    for index in 0..2 {
        let cfg = WorkerConfig {
            max_shards: Some(1),
            ..WorkerConfig::new(
                &dir,
                layout.worker_store_path(&format!("{index:03}")),
                format!("doomed_{index}"),
            )
        };
        let outcome = run_worker(&cfg).expect("partial worker");
        assert_eq!(outcome.shards_completed, 1, "died after one shard");
    }
    assert_eq!(layout.done_count(manifest.shard_count), 2);

    // Sabotage: pretend worker 000 was killed *mid-shard* on shard 2 — a
    // claimed lease from a dead process and no done marker.
    std::fs::write(
        layout.lease_path(2),
        "{\"worker\":\"doomed_000\",\"pid\":4294967294}",
    )
    .expect("forge dead lease");

    // Phase 2 — the coordinator restarts on the same directory (resume
    // semantics: fresh = false).  It must steal the dead lease, finish the
    // remaining shards and merge to the single-process report.
    let report = spec
        .run_distributed(&dir, &opts(2), &ThreadSpawner::default())
        .expect("restarted run succeeds");
    assert_eq!(report, single_process);
    assert_eq!(report_bits(&report), report_bits(&single_process));
    assert!(layout.all_done(manifest.shard_count));

    // The phase-1 records were reused, not recomputed: a worker resuming
    // its own store skips every job that is already on disk.
    let resumed = WorkerConfig::new(&dir, layout.worker_store_path("000"), "doomed_000_reborn");
    let outcome = run_worker(&resumed).expect("re-run worker");
    assert_eq!(outcome.jobs_run, 0, "nothing left to simulate");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_lease_is_stolen_and_the_shard_completes() {
    let spec = diverse_spec();
    let dir = temp_grid("stale_steal");
    let layout = ShardLayout::new(&dir);
    layout.create_dirs().expect("create layout");
    GridManifest::from_spec(&spec, 4)
        .write(&layout)
        .expect("write manifest");

    // Shard 0: leased by a verifiably dead process (fresh mtime).
    std::fs::write(
        layout.lease_path(0),
        "{\"worker\":\"ghost\",\"pid\":4294967294,\"pid_start\":null}",
    )
    .expect("forge ghost lease");
    // Shard 1: leased by *this* process (pid alive), so only the TTL can
    // release it.
    std::fs::write(
        layout.lease_path(1),
        format!(
            "{{\"worker\":\"hung_thread\",\"pid\":{},\"pid_start\":null}}",
            std::process::id()
        ),
    )
    .expect("forge hung lease");

    // A worker with a long TTL steals the dead-pid lease immediately but
    // must respect the live one.
    let mut cfg = WorkerConfig::new(&dir, layout.worker_store_path("stealer"), "stealer");
    cfg.lease_ttl = StdDuration::from_secs(3600);
    run_worker(&cfg).expect("worker run");
    assert!(layout.done_path(0).exists(), "dead-pid shard was stolen");
    assert!(
        !layout.done_path(1).exists(),
        "live lease within TTL is honoured"
    );

    // Once the TTL lapses the hung shard is stolen too.
    std::thread::sleep(StdDuration::from_millis(30));
    cfg.lease_ttl = StdDuration::from_millis(10);
    run_worker(&cfg).expect("worker re-run");
    assert!(layout.done_path(1).exists(), "expired lease was stolen");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_is_invariant_under_shuffled_store_discovery_order() {
    let spec = diverse_spec();
    let single_process = spec.run();
    let dir = temp_grid("shuffle");
    spec.run_distributed(&dir, &opts(3), &ThreadSpawner::default())
        .expect("distributed run");

    let layout = ShardLayout::new(&dir);
    let manifest = GridManifest::load(&layout).expect("manifest");
    let mut stores = layout.discover_worker_stores().expect("stores");
    assert!(stores.len() >= 2, "several workers contributed");
    // Duplicate one store under another name: stolen shards legitimately
    // leave the same records in two files.
    let dup = layout.worker_store_path("duplicate");
    std::fs::copy(&stores[0], &dup).expect("copy store");
    stores.push(dup);

    type Permutation = fn(&mut Vec<PathBuf>);
    let orders: [Permutation; 3] = [|_v| {}, |v| v.reverse(), |v| v.rotate_left(1)];
    let mut reports = Vec::new();
    for permute in orders {
        let mut shuffled = stores.clone();
        permute(&mut shuffled);
        let records = collect_grid_records(&manifest, &shuffled).expect("collect");
        let mut report = ExperimentReport::from_records(records);
        report.seeds = spec.seeds.clone();
        reports.push(report);
    }
    for report in &reports {
        assert_eq!(report, &single_process);
        assert_eq!(report_bits(report), report_bits(&single_process));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_mismatch_is_rejected_instead_of_contaminating_the_directory() {
    let spec = diverse_spec();
    let dir = temp_grid("mismatch");
    spec.run_distributed(&dir, &opts(1), &ThreadSpawner::default())
        .expect("first grid");

    let mut edited = spec.clone();
    edited.seeds.push(9_999);
    let err = edited
        .run_distributed(&dir, &opts(1), &ThreadSpawner::default())
        .expect_err("a different grid must not reuse the directory");
    assert!(
        matches!(err, DistribError::ManifestMismatch { .. }),
        "{err}"
    );

    // With fresh = true the directory is wiped and the new grid runs.
    let fresh = DistribOptions {
        fresh: true,
        ..opts(1)
    };
    let report = edited
        .run_distributed(&dir, &fresh, &ThreadSpawner::default())
        .expect("fresh rerun");
    assert_eq!(report, edited.run());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_load_sweep_matches_the_resumable_spec_path() {
    let loads = [5.0, 12.0];
    let make = |load: f64| {
        ScenarioConfig::small(PolicyKind::PureLeach, load, 0).with_duration(Duration::from_secs(8))
    };
    let spec = load_sweep_spec(&loads, 41, 2, make);
    let expected = spec.run();
    let dir = temp_grid("sweep");
    let report = spec
        .run_distributed(&dir, &opts(2), &ThreadSpawner::default())
        .expect("distributed sweep");
    assert_eq!(report, expected);
    assert_eq!(report_bits(&report), report_bits(&expected));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_sequential_stopping_matches_the_store_backed_loop() {
    let spec = ExperimentSpec {
        scenarios: vec![ScenarioSpec::new("uniform", base(0))],
        policies: vec![PolicyKind::Scheme1Adaptive],
        seeds: vec![9_100, 9_101],
    };
    let stop = SequentialStopping {
        metric: "delivery_rate".to_string(),
        target_half_width: 1e-9, // unreachable: drives the loop to its cap
        batch: 2,
        max_replicates: 6,
    };

    // Reference: the single-process, store-backed sequential loop.
    let store_path = std::env::temp_dir().join(format!(
        "caem_distrib_{}_seq_reference.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&store_path).ok();
    let mut store = ExperimentStore::open(&store_path).expect("open store");
    let reference = spec.run_sequential(&mut store, &stop);

    let dir = temp_grid("sequential");
    let outcome =
        run_sequential_distributed(&spec, &dir, &opts(2), &ThreadSpawner::default(), &stop)
            .expect("distributed sequential");
    assert_eq!(outcome.converged, reference.converged);
    assert_eq!(outcome.rounds, reference.rounds, "identical CI trajectory");
    assert_eq!(outcome.report, reference.report);
    assert_eq!(report_bits(&outcome.report), report_bits(&reference.report));

    // Re-invocation resumes from the completed round directories: nothing
    // is simulated again and the outcome is unchanged.
    let again = run_sequential_distributed(&spec, &dir, &opts(2), &ThreadSpawner::default(), &stop)
        .expect("resumed sequential");
    assert_eq!(again.rounds, outcome.rounds);
    assert_eq!(again.report, outcome.report);

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_runs_stay_inside_the_process_thread_budget() {
    let spec = diverse_spec();
    let dir = temp_grid("budget");
    spec.run_distributed(&dir, &opts(3), &ThreadSpawner::default())
        .expect("distributed run");
    // In-process workers draw their rayon fan-outs from the shared global
    // budget: however many workers run concurrently, the peak of live
    // spawned simulation threads never exceeds the process cap.
    assert!(rayon::peak_live_workers() <= rayon::process_thread_cap());
    // And the budget arithmetic offered to process workers divides the cap.
    let share = rayon::split_thread_budget(3);
    assert!(share >= 1);
    assert!(share * 3 <= rayon::process_thread_cap().max(3));
    std::fs::remove_dir_all(&dir).ok();
}
