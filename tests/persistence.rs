//! Resume/replay contract tests for the experiment persistence layer.
//!
//! These extend the determinism discipline (tests/determinism.rs) across
//! process boundaries: a grid that crashes and resumes from its JSONL store,
//! or is re-aggregated offline from the store alone, must reproduce the
//! uninterrupted run's report **bit for bit**.  On top of that they pin the
//! robustness contract (a torn trailing line re-runs its job instead of
//! panicking or double-counting) and the sequential-stopping contract
//! (half-widths shrink per batch, the loop terminates, replicate counts are
//! deterministic and persisted replicates are reused across invocations).

use std::path::PathBuf;

use caem_suite::caem::policy::PolicyKind;
use caem_suite::energy::battery::EnergyLedger;
use caem_suite::metrics::energy::EnergyTracker;
use caem_suite::metrics::fairness::QueueFairness;
use caem_suite::metrics::lifetime::LifetimeTracker;
use caem_suite::metrics::perf::NetworkPerformance;
use caem_suite::simcore::time::{Duration, SimTime};
use caem_suite::wsnsim::experiment::{
    ExperimentReport, ExperimentSpec, ScenarioSpec, SequentialStopping, METRIC_NAMES,
};
use caem_suite::wsnsim::persist::{config_hash, ExperimentStore, JobRecord};
use caem_suite::wsnsim::{ScenarioConfig, SimulationResult, SimulationRun, Topology};
use proptest::prelude::*;

fn temp_store(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "caem_persistence_{}_{name}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

/// The report serialized to its canonical JSON text: float fields travel
/// through shortest-round-trip formatting, so string equality here is
/// bit-level equality of every mean/CI/min/max.
fn report_bits(report: &ExperimentReport) -> String {
    serde_json::to_string(&report.to_json()).expect("report serializes")
}

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small(PolicyKind::PureLeach, 8.0, seed).with_duration(Duration::from_secs(10))
}

/// A grid over diverse deployments, heterogeneous batteries and churn —
/// the shapes whose records must all survive the JSONL round-trip.
fn diverse_spec(replicates: usize) -> ExperimentSpec {
    ExperimentSpec::paper_policies(
        vec![
            ScenarioSpec::new("uniform", base(0)),
            ScenarioSpec::new(
                "hotspots",
                base(0).with_topology(Topology::GaussianClusters {
                    clusters: 3,
                    sigma_m: 10.0,
                }),
            ),
            ScenarioSpec::new(
                "corridor_churn",
                base(0)
                    .with_topology(Topology::Corridor {
                        width_fraction: 0.3,
                    })
                    .with_energy_spread(0.3)
                    .with_churn_mttf_s(40.0),
            ),
        ],
        5_200,
        replicates,
    )
}

#[test]
fn resumed_grid_is_bit_identical_to_uninterrupted_run() {
    let spec = diverse_spec(3);
    let uninterrupted = spec.run();

    // The clean persisted run must already match the store-less path.
    let clean_path = temp_store("resume_clean");
    let mut clean_store = ExperimentStore::open(&clean_path).expect("open store");
    let clean = spec.run_with_store(&mut clean_store);
    assert_eq!(clean, uninterrupted, "persisted run == store-less run");
    assert_eq!(report_bits(&clean), report_bits(&uninterrupted));
    drop(clean_store);

    let full_text = std::fs::read_to_string(&clean_path).expect("read store");
    let lines: Vec<&str> = full_text.lines().collect();
    assert_eq!(
        lines.len(),
        1 + spec.job_count(),
        "header + one line per job"
    );

    // Crash after k completed jobs, for an early, a mid and a late crash.
    for keep in [1, spec.job_count() / 2, spec.job_count() - 1] {
        let path = temp_store(&format!("resume_k{keep}"));
        std::fs::write(&path, format!("{}\n", lines[..1 + keep].join("\n")))
            .expect("write truncated store");
        let mut store = ExperimentStore::open(&path).expect("open truncated store");
        assert_eq!(store.len(), keep, "k jobs survived the crash");
        let resumed = spec.run_with_store(&mut store);
        assert_eq!(store.len(), spec.job_count(), "resume filled in the rest");
        assert_eq!(
            resumed, uninterrupted,
            "resume after {keep} jobs must reproduce the uninterrupted report"
        );
        assert_eq!(report_bits(&resumed), report_bits(&uninterrupted));
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&clean_path).ok();
}

#[test]
fn offline_reaggregation_from_jsonl_alone_matches_the_in_memory_report() {
    let spec = diverse_spec(2);
    let path = temp_store("reaggregate");
    let mut store = ExperimentStore::open(&path).expect("open store");
    let in_memory = spec.run_with_store(&mut store);
    drop(store);

    // Re-load from disk only: no spec, no simulation.
    let offline = ExperimentStore::load(&path)
        .expect("load store")
        .rebuild_report();
    assert_eq!(offline, in_memory);
    assert_eq!(report_bits(&offline), report_bits(&in_memory));
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_trailing_line_reruns_the_job_without_panicking_or_double_counting() {
    let spec = diverse_spec(2);
    let path = temp_store("torn");
    let mut store = ExperimentStore::open(&path).expect("open store");
    let clean = spec.run_with_store(&mut store);
    drop(store);

    // Tear the final record in half — the signature of a crash mid-write.
    let text = std::fs::read_to_string(&path).expect("read store");
    let cut = text.trim_end().len() - 40;
    std::fs::write(&path, &text[..cut]).expect("write torn store");

    let mut store = ExperimentStore::open(&path).expect("torn store must load");
    assert_eq!(
        store.skipped_lines(),
        1,
        "the torn line is skipped, not fatal"
    );
    assert_eq!(store.len(), spec.job_count() - 1);
    let before = store.len();
    let resumed = spec.run_with_store(&mut store);
    assert_eq!(store.len() - before, 1, "exactly the torn job re-ran");
    assert_eq!(resumed, clean);
    drop(store);

    // The re-appended record must not have fused with the torn fragment,
    // and a duplicated line must not double-count its replicate.
    let mut text = std::fs::read_to_string(&path).expect("read store");
    let dup = text
        .lines()
        .nth(1)
        .expect("store has at least one record")
        .to_string();
    text.push_str(&dup);
    text.push('\n');
    std::fs::write(&path, text).expect("write duplicated store");
    let store = ExperimentStore::load(&path).expect("load store");
    assert_eq!(
        store.skipped_lines(),
        1,
        "only the old torn line is skipped"
    );
    assert_eq!(
        store.len(),
        spec.job_count(),
        "duplicate deduped, not counted"
    );
    assert_eq!(store.rebuild_report(), clean);
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_changed_scenario_invalidates_exactly_its_persisted_records() {
    let spec = diverse_spec(2);
    let path = temp_store("stale");
    let mut store = ExperimentStore::open(&path).expect("open store");
    spec.run_with_store(&mut store);
    assert_eq!(store.len(), spec.job_count());

    // Same grid shape, but one scenario's configuration changed: its six
    // records hash stale and re-run; the other twelve are reused as-is.
    let mut edited = spec.clone();
    edited.scenarios[1] = ScenarioSpec::new(
        "hotspots",
        base(0).with_topology(Topology::GaussianClusters {
            clusters: 5,
            sigma_m: 6.0,
        }),
    );
    let report = edited.run_with_store(&mut store);
    assert_eq!(
        store.len(),
        spec.job_count(),
        "stale records are overwritten in place (last wins), not duplicated"
    );
    assert_eq!(report, edited.run(), "the report reflects the edited grid");
    // The untouched scenarios still verify against their original hashes.
    let jobs = spec.enumerate_jobs();
    let untouched = &jobs[0];
    assert!(store
        .get(
            (0, 0, untouched.seed),
            config_hash(&untouched.config),
            "uniform"
        )
        .is_some());

    // Renaming a scenario (config untouched, so the hash still matches)
    // must also invalidate its records: labels live outside the hashed
    // config, and reused records would otherwise carry the stale name into
    // the report.
    let mut renamed = edited.clone();
    renamed.scenarios[0] = ScenarioSpec::new("uniform_renamed", base(0));
    let renamed_report = renamed.run_with_store(&mut store);
    assert_eq!(
        renamed_report.cells[0].scenario, "uniform_renamed",
        "the report must carry the new label, not the persisted one"
    );
    assert_eq!(renamed_report, renamed.run());
    std::fs::remove_file(&path).ok();
}

#[test]
fn sequential_stopping_shrinks_terminates_and_is_deterministic() {
    let spec = ExperimentSpec {
        scenarios: vec![ScenarioSpec::new("uniform", base(0))],
        policies: vec![PolicyKind::Scheme1Adaptive],
        seeds: vec![9_100, 9_101],
    };
    // An unreachable target drives the loop to its cap.
    let stop = SequentialStopping {
        metric: "delivery_rate".to_string(),
        target_half_width: 1e-9,
        batch: 2,
        max_replicates: 10,
    };
    let path = temp_store("sequential");
    let mut store = ExperimentStore::open(&path).expect("open store");
    let outcome = spec.run_sequential(&mut store, &stop);

    assert!(!outcome.converged, "1e-9 is unreachable in 10 replicates");
    let counts: Vec<usize> = outcome.rounds.iter().map(|r| r.replicates).collect();
    assert_eq!(
        counts,
        vec![2, 4, 6, 8, 10],
        "batches append deterministically"
    );
    for pair in outcome.rounds.windows(2) {
        assert!(
            pair[1].worst_half_width < pair[0].worst_half_width,
            "half-width must shrink per batch: {} -> {}",
            pair[0].worst_half_width,
            pair[1].worst_half_width
        );
    }
    assert_eq!(
        outcome.report.cells[0]
            .metric("delivery_rate")
            .unwrap()
            .count(),
        10,
        "the final report carries every appended replicate"
    );
    assert_eq!(store.len(), 10, "every replicate was persisted");

    // Re-invoking with the same store reuses all persisted replicates:
    // the trace is identical and nothing new is simulated.
    let before = store.len();
    let again = spec.run_sequential(&mut store, &stop);
    assert_eq!(store.len(), before, "no new simulations on re-invocation");
    assert_eq!(again.rounds, outcome.rounds);
    assert_eq!(again.report, outcome.report);

    // A fresh store reproduces the exact same trace (deterministic in the
    // seed set), and a generous target converges on the first round.
    let path2 = temp_store("sequential_fresh");
    let mut store2 = ExperimentStore::open(&path2).expect("open store");
    let fresh = spec.run_sequential(&mut store2, &stop);
    assert_eq!(fresh.rounds, outcome.rounds);
    let generous = spec.run_sequential(
        &mut store2,
        &SequentialStopping {
            target_half_width: 1.0,
            ..stop.clone()
        },
    );
    assert!(generous.converged);
    assert_eq!(
        generous.rounds.len(),
        1,
        "already within target at round one"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}

/// A hand-built result whose delay distribution lives entirely in the
/// histogram's overflow region (delays beyond even the auto-resize growth
/// cap), plus optional zero deliveries — the cases where quantiles and ratio
/// metrics are undefined.
fn overflow_result(deliveries: u64) -> SimulationResult {
    let mut perf = NetworkPerformance::new();
    perf.record_generated_n(deliveries + 5);
    for _ in 0..deliveries {
        // A week of delay: beyond the delay histogram's growth cap, so the
        // observation is "unbounded" even to the auto-resizing bins.
        perf.record_delivered(Duration::from_secs(604_800), 2_000);
    }
    perf.set_horizon(SimTime::from_secs(200));
    SimulationResult {
        policy: PolicyKind::Scheme2Fixed,
        traffic_rate_pps: 5.0,
        seed: 3,
        end_time: SimTime::from_secs(200),
        energy: EnergyTracker::new(4),
        lifetime: LifetimeTracker::new(4),
        perf,
        fairness: QueueFairness::new(),
        ledger: EnergyLedger::new(),
        nodes: Vec::new(),
        collisions: 0,
        bursts: 0,
        node_failures: 0,
        events_processed: 123,
        queue_capacity: 64,
        queue_high_watermark: 10,
        profile: caem_suite::metrics::prof::Profile::new(),
    }
}

#[test]
fn overflow_quantiles_and_undefined_ratios_round_trip_as_none() {
    let spec = ExperimentSpec {
        scenarios: vec![ScenarioSpec::new("overflow", base(3))],
        policies: vec![PolicyKind::Scheme2Fixed],
        seeds: vec![3],
    };
    let job = &spec.enumerate_jobs()[0];

    // All-overflow delays: every quantile is unknown-beyond-range.
    let saturated = JobRecord::from_result("overflow", 0, job, &overflow_result(7));
    assert_eq!(saturated.delay_p50_ms, None);
    assert_eq!(saturated.delay_p99_ms, None);

    // Merely-saturated delays (past 10 s but below the growth cap) stay
    // quantifiable now that the delay histogram auto-resizes: a 100 s tail
    // must persist as a value, not as None.
    let mut merely_saturated = NetworkPerformance::new();
    merely_saturated.record_generated_n(4);
    for _ in 0..4 {
        merely_saturated.record_delivered(Duration::from_secs(100), 2_000);
    }
    let p99 = merely_saturated
        .delay_quantile_ms(0.99)
        .expect("saturation p99 is reportable");
    assert!((90_000.0..110_001.0).contains(&p99), "p99 {p99}");

    // Zero deliveries: quantiles empty *and* energy-per-packet undefined.
    let starved = JobRecord::from_result("overflow", 0, job, &overflow_result(0));
    assert_eq!(starved.delay_p50_ms, None);
    let mj_slot = METRIC_NAMES
        .iter()
        .position(|&m| m == "mj_per_delivered_packet")
        .unwrap();
    assert_eq!(starved.metrics[mj_slot], None, "NaN persists as None");
    assert!(
        starved.metric_array()[mj_slot].is_nan(),
        "and decodes to NaN"
    );

    for record in [&saturated, &starved] {
        let line = serde_json::to_string(record).expect("encode");
        let back: JobRecord = serde_json::from_str(&line).expect("decode");
        assert_eq!(&back, record, "JSONL round-trip is lossless");
    }
}

#[test]
fn real_results_round_trip_across_every_topology_churn_and_spread() {
    let cases = [
        (Topology::Uniform, 0.0, None),
        (Topology::Grid { jitter_m: 2.0 }, 0.25, None),
        (
            Topology::GaussianClusters {
                clusters: 3,
                sigma_m: 10.0,
            },
            0.0,
            Some(30.0),
        ),
        (
            Topology::Corridor {
                width_fraction: 0.3,
            },
            0.4,
            Some(25.0),
        ),
    ];
    for (i, (topology, spread, churn)) in cases.into_iter().enumerate() {
        let mut config = base(600 + i as u64)
            .with_topology(topology)
            .with_energy_spread(spread);
        if let Some(mttf) = churn {
            config = config.with_churn_mttf_s(mttf);
        }
        let spec = ExperimentSpec {
            scenarios: vec![ScenarioSpec::new(format!("case_{i}"), config)],
            policies: vec![PolicyKind::Scheme1Adaptive],
            seeds: vec![600 + i as u64],
        };
        let job = &spec.enumerate_jobs()[0];
        let result = SimulationRun::new(job.config.clone()).run();
        let record = JobRecord::from_result(&format!("case_{i}"), 0, job, &result);
        let line = serde_json::to_string(&record).expect("encode");
        let back: JobRecord = serde_json::from_str(&line).expect("decode");
        assert_eq!(back, record, "{topology:?} record must round-trip");
        // Metric values survive bit-exactly, None slots stay None.
        for (a, b) in back.metric_array().iter().zip(record.metric_array()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            back.delay_p95_ms.map(f64::to_bits),
            result.perf.delay_quantile_ms(0.95).map(f64::to_bits)
        );
    }
}

/// Labels with the characters most likely to break a JSONL encoder.
const TRICKY_LABELS: [&str; 4] = [
    "uniform",
    "hot spots \"β\" → π",
    "line\nbreak and\ttab",
    "back\\slash /slash \u{1F600}",
];

proptest! {
    #[test]
    fn job_records_round_trip_jsonl_bit_exactly(
        seed in any::<u64>(),
        hash in any::<u64>(),
        scenario_index in 0usize..64,
        policy_pick in 0usize..3,
        label_pick in 0usize..TRICKY_LABELS.len(),
        raw in prop::collection::vec(-1.0e12f64..1.0e12, METRIC_NAMES.len()),
        none_mask in any::<u8>(),
        generated in any::<u64>(),
        delivered in any::<u64>(),
        p50 in 0.0f64..10_000.0,
        quantile_mask in any::<u8>(),
    ) {
        let policy = [
            PolicyKind::PureLeach,
            PolicyKind::Scheme1Adaptive,
            PolicyKind::Scheme2Fixed,
        ][policy_pick];
        let record = JobRecord {
            scenario_index,
            scenario: TRICKY_LABELS[label_pick].to_string(),
            policy_index: policy_pick,
            policy,
            seed,
            config_hash: hash,
            metrics: raw
                .iter()
                .enumerate()
                .map(|(i, &v)| (none_mask >> (i % 8) & 1 == 0).then_some(v))
                .collect(),
            generated,
            delivered,
            events_processed: generated ^ hash,
            end_time_nanos: seed.rotate_left(17),
            delay_p50_ms: (quantile_mask & 1 == 0).then_some(p50),
            delay_p95_ms: (quantile_mask & 2 == 0).then_some(p50 * 1.5),
            delay_p99_ms: (quantile_mask & 4 == 0).then_some(p50 * 2.0),
        };
        let line = serde_json::to_string(&record).expect("encode");
        prop_assert!(!line.contains('\n'), "a JSONL record is one line");
        let back: JobRecord = serde_json::from_str(&line).expect("decode");
        prop_assert_eq!(&back, &record);
        // Re-encoding reproduces the identical bytes: the floats took no
        // precision damage anywhere in the cycle.
        prop_assert_eq!(serde_json::to_string(&back).expect("re-encode"), line);
    }

    #[test]
    fn metric_arrays_decode_none_to_nan_and_values_bit_exactly(
        raw in prop::collection::vec(-1.0e300f64..1.0e300, METRIC_NAMES.len()),
        none_mask in any::<u8>(),
    ) {
        let record = JobRecord {
            scenario_index: 0,
            scenario: "x".to_string(),
            policy_index: 0,
            policy: PolicyKind::PureLeach,
            seed: 0,
            config_hash: 0,
            metrics: raw
                .iter()
                .enumerate()
                .map(|(i, &v)| (none_mask >> (i % 8) & 1 == 0).then_some(v))
                .collect(),
            generated: 0,
            delivered: 0,
            events_processed: 0,
            end_time_nanos: 0,
            delay_p50_ms: None,
            delay_p95_ms: None,
            delay_p99_ms: None,
        };
        let line = serde_json::to_string(&record).expect("encode");
        let back: JobRecord = serde_json::from_str(&line).expect("decode");
        let array = back.metric_array();
        for (i, &v) in raw.iter().enumerate() {
            if none_mask >> (i % 8) & 1 == 0 {
                prop_assert_eq!(array[i].to_bits(), v.to_bits());
            } else {
                prop_assert!(array[i].is_nan());
            }
        }
    }
}
