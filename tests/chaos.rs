//! Chaos-mode contract tests: a distributed grid run under the deterministic
//! fault plan must produce a report **byte-identical** to the clean run
//! (recoverable faults), or identical-minus-quarantined (poison), and the
//! durability seams (atomic manifest replace, fsync'd stores) must never
//! leave half-written artifacts behind.
//!
//! The fault plan is process-global state, so everything that installs one
//! lives in a single sequential `#[test]`; phases reset the plan and the
//! event counters between them.

use std::path::PathBuf;
use std::time::Duration as StdDuration;

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::distrib::{
    merge_grid_report, run_worker, DistribOptions, GridManifest, ShardLayout, ThreadSpawner,
    WorkerConfig,
};
use caem_suite::wsnsim::experiment::{ExperimentReport, ExperimentSpec, ScenarioSpec};
use caem_suite::wsnsim::faults::{
    self, FaultKind, FaultPlanConfig, FaultRole, RunEvent, POISON_MARKER,
};
use caem_suite::wsnsim::persist::{ExperimentStore, JobKey, StoreOptions};
use caem_suite::wsnsim::{ScenarioConfig, Topology};

fn temp_grid(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("caem_chaos_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&path).ok();
    path
}

/// The report serialized to canonical JSON text: string equality is
/// bit-level equality of every aggregated float.
fn report_bits(report: &ExperimentReport) -> String {
    serde_json::to_string(&report.to_json()).expect("report serializes")
}

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small(PolicyKind::PureLeach, 8.0, seed).with_duration(Duration::from_secs(10))
}

/// A diverse little grid (18 jobs): two deployment shapes plus the diurnal
/// traffic axis, three policies, two seeds.
fn diverse_spec() -> ExperimentSpec {
    ExperimentSpec::paper_policies(
        vec![
            ScenarioSpec::new("uniform", base(0)),
            ScenarioSpec::new(
                "corridor",
                base(0).with_topology(Topology::Corridor {
                    width_fraction: 0.3,
                }),
            ),
            ScenarioSpec::new("diurnal", base(0).with_diurnal_traffic(7.0, 0.8)),
        ],
        7_300,
        2,
    )
}

fn opts(workers: usize) -> DistribOptions {
    DistribOptions {
        shards_per_worker: 2,
        ..DistribOptions::new(workers)
    }
}

fn grid_keys(spec: &ExperimentSpec) -> Vec<JobKey> {
    let mut keys = Vec::new();
    for si in 0..spec.scenarios.len() {
        for pi in 0..spec.policies.len() {
            for &seed in &spec.seeds {
                keys.push((si, pi, seed));
            }
        }
    }
    keys
}

#[test]
fn fault_plans_preserve_reports_and_poison_is_quarantined() {
    let spec = diverse_spec();
    let clean = spec.run();
    let clean_bits = report_bits(&clean);
    assert!(
        !clean_bits.contains("quarantined"),
        "a healthy report carries no degradation section"
    );

    // --- Phase A: every recoverable fault kind at once ------------------
    // Torn appends, transient lease/store errors, forged clock skew and
    // delayed renames — the distributed run must recover from all of them
    // and still produce the byte-identical report.
    faults::reset_events();
    faults::install_plan(
        FaultPlanConfig::parse("1105:torn+transient+skew+delay").expect("valid plan"),
        FaultRole::Coordinator,
    );
    let dir = temp_grid("recoverable");
    let report = spec
        .run_distributed(&dir, &opts(2), &ThreadSpawner::default())
        .expect("chaos run completes");
    assert_eq!(
        report_bits(&report),
        clean_bits,
        "recoverable faults must not change a single byte of the report"
    );
    assert!(
        faults::event_count(RunEvent::FaultInjected) > 0,
        "the plan actually fired"
    );
    assert!(
        faults::event_summary().is_some(),
        "recovery events were counted"
    );
    faults::clear_plan();
    std::fs::remove_dir_all(&dir).ok();

    // --- Phase B: poison quarantine -------------------------------------
    // Pick a seed whose deterministic ~1/16 poison subset hits this grid
    // partially: at least one job dies, but not the whole grid.
    let keys = grid_keys(&spec);
    // The winning install is the last one performed, so the active plan and
    // `poisoned` agree when the run below starts.
    let (_plan, poisoned) = (0u64..500)
        .find_map(|seed| {
            let plan = faults::install_plan(
                FaultPlanConfig {
                    seed,
                    kinds: vec![FaultKind::Poison],
                },
                FaultRole::Coordinator,
            );
            let poisoned: Vec<JobKey> = keys
                .iter()
                .copied()
                .filter(|&k| plan.is_poisoned(k))
                .collect();
            (!poisoned.is_empty() && poisoned.len() < keys.len()).then_some((plan, poisoned))
        })
        .expect("some seed poisons a strict subset of 18 jobs");
    faults::reset_events();
    let dir = temp_grid("poison");
    let degraded = spec
        .run_distributed(&dir, &opts(2), &ThreadSpawner::default())
        .expect("poisoned grid still completes");

    let failed_keys: Vec<JobKey> = degraded.failures.iter().map(|f| f.key()).collect();
    assert_eq!(failed_keys, poisoned, "exactly the poisoned jobs failed");
    for failure in &degraded.failures {
        assert!(
            failure.reason.contains(POISON_MARKER),
            "quarantine reason carries the panic text: {}",
            failure.reason
        );
        assert_eq!(failure.attempts, 2, "default retry budget was exhausted");
    }
    assert!(faults::event_count(RunEvent::JobQuarantined) > 0);
    assert!(report_bits(&degraded).contains("quarantined"));

    // Identical-minus-quarantined: cells untouched by poison are equal to
    // the clean run's, bit for bit.
    for (si, scenario) in spec.scenarios.iter().enumerate() {
        for (pi, &policy) in spec.policies.iter().enumerate() {
            if poisoned.iter().any(|&(s, p, _)| (s, p) == (si, pi)) {
                continue;
            }
            assert_eq!(
                degraded.cell(&scenario.label, policy),
                clean.cell(&scenario.label, policy),
                "cell ({}, {policy:?}) had no poisoned replicate",
                scenario.label
            );
        }
    }

    // The offline merge of the directory reproduces the same degradation.
    let offline = merge_grid_report(&dir).expect("offline merge");
    assert_eq!(
        offline.failures, degraded.failures,
        "standing quarantines survive offline re-aggregation"
    );
    faults::clear_plan();
    std::fs::remove_dir_all(&dir).ok();

    // --- Phase C: wall-clock budget quarantine (no fault plan at all) ----
    faults::reset_events();
    let dir = temp_grid("budget");
    let layout = ShardLayout::new(&dir);
    layout.create_dirs().expect("create layout");
    GridManifest::from_spec(&spec, 4)
        .write(&layout)
        .expect("write manifest");
    let mut cfg = WorkerConfig::new(&dir, layout.worker_store_path("impatient"), "impatient");
    cfg.job_attempts = 1;
    cfg.job_wall_budget = Some(StdDuration::ZERO);
    let outcome = run_worker(&cfg).expect("budget-starved worker completes the grid");
    assert_eq!(outcome.jobs_run, 0, "no job fits a zero budget");
    assert_eq!(outcome.jobs_quarantined, spec.job_count());
    let report = merge_grid_report(&dir).expect("merge degraded grid");
    assert_eq!(report.failures.len(), spec.job_count());
    for failure in &report.failures {
        assert!(
            failure.reason.contains("wall-clock budget"),
            "budget reason, got: {}",
            failure.reason
        );
    }
    // Quarantines are settled state: a healthy worker resuming the same
    // directory finds nothing pending.
    let healthy = WorkerConfig::new(&dir, layout.worker_store_path("late"), "late");
    let resumed = run_worker(&healthy).expect("resume over quarantined grid");
    assert_eq!(resumed.jobs_run, 0, "quarantined jobs are not re-run");
    std::fs::remove_dir_all(&dir).ok();

    // --- Phase D: manifest crash-consistency -----------------------------
    // A crash between writing the temp file and the atomic rename must
    // never surface a half-manifest: the temp file is simply dead weight.
    let dir = temp_grid("half_manifest");
    let layout = ShardLayout::new(&dir);
    layout.create_dirs().expect("create layout");
    let manifest = GridManifest::from_spec(&spec, 4);
    manifest.write(&layout).expect("write manifest");
    let full = std::fs::read_to_string(layout.manifest_path()).expect("read manifest");
    let stray = layout.manifest_path().with_extension("tmp.9999.1");
    std::fs::write(&stray, &full[..full.len() / 2]).expect("plant half-written temp");
    let loaded = GridManifest::load(&layout).expect("manifest still loads");
    assert_eq!(loaded.grid_hash, manifest.grid_hash);
    std::fs::remove_dir_all(&dir).ok();

    // Same crash before the *first* write: only the temp exists, and the
    // loader reports a clean absence instead of parsing the fragment.
    let dir = temp_grid("only_temp");
    let layout = ShardLayout::new(&dir);
    layout.create_dirs().expect("create layout");
    let stray = layout.manifest_path().with_extension("tmp.9999.2");
    std::fs::write(&stray, &full[..full.len() / 2]).expect("plant half-written temp");
    assert!(
        GridManifest::load(&layout).is_err(),
        "a lone temp fragment is not a manifest"
    );
    std::fs::remove_dir_all(&dir).ok();

    // --- Phase E: fsync'd store round-trip -------------------------------
    let tiny = ExperimentSpec::paper_policies(vec![ScenarioSpec::new("uniform", base(0))], 99, 1);
    let store_path = std::env::temp_dir().join(format!(
        "caem_chaos_{}_fsync_store.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&store_path).ok();
    let mut store =
        ExperimentStore::open_with(&store_path, StoreOptions { fsync: true }).expect("open store");
    let direct = tiny.run_with_store(&mut store);
    drop(store);
    let reloaded = ExperimentStore::load(&store_path).expect("reload fsync'd store");
    assert_eq!(reloaded.len(), tiny.job_count());
    assert_eq!(
        report_bits(&reloaded.rebuild_report()),
        report_bits(&direct)
    );
    std::fs::remove_file(&store_path).ok();

    // --- Phase F: the coordinator → worker environment hand-off ----------
    std::env::set_var(faults::CHAOS_ENV, "21:torn+skew");
    let installed = faults::install_plan_from_env(FaultRole::Worker)
        .expect("well-formed plan installs")
        .expect("non-empty env installs a plan");
    assert_eq!(installed.config().env_string(), "21:torn+skew");
    std::env::set_var(faults::CHAOS_ENV, "not-a-plan");
    assert!(
        faults::install_plan_from_env(FaultRole::Worker).is_err(),
        "a malformed plan is a hard error, not a silent clean run"
    );
    std::env::remove_var(faults::CHAOS_ENV);
    faults::clear_plan();
    assert!(
        faults::install_plan_from_env(FaultRole::Worker)
            .expect("empty env is fine")
            .is_none(),
        "no env, no plan"
    );
    faults::reset_events();
}
