//! Property-based tests (proptest) on the core data structures and protocol
//! invariants that the whole evaluation rests on.

use caem_suite::caem::config::CaemConfig;
use caem_suite::caem::policy::{AdaptiveThreshold, PolicyKind, ThresholdPolicy};
use caem_suite::caem::predictor::QueuePredictor;
use caem_suite::mac::backoff::{BackoffConfig, BackoffScheduler};
use caem_suite::mac::burst::BurstPolicy;
use caem_suite::metrics::Commute;
use caem_suite::phy::frame::FrameSpec;
use caem_suite::phy::mode::{TransmissionMode, ALL_MODES};
use caem_suite::simcore::rng::StreamRng;
use caem_suite::simcore::stats::{ConcurrentStats, RunningStats};
use caem_suite::simcore::time::{Duration, SimTime};
use caem_suite::traffic::buffer::PacketBuffer;
use caem_suite::traffic::packet::{Packet, PacketId};
use caem_suite::wsnsim::experiment::{ExperimentReport, METRIC_NAMES};
use caem_suite::wsnsim::JobRecord;
use proptest::prelude::*;

/// A deterministic Fisher–Yates permutation of `0..n`, driven by the
/// simulator's own seeded RNG so proptest can explore orderings.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StreamRng::from_seed_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = ((rng.next_f64() * (i + 1) as f64) as usize).min(i);
        idx.swap(i, j);
    }
    idx
}

/// Fold per-chunk summaries with a random binary merge tree: repeatedly pick
/// two summaries (position driven by `seed`) and commute them until one
/// remains.
fn merge_random_tree(mut parts: Vec<RunningStats>, seed: u64) -> RunningStats {
    let mut rng = StreamRng::from_seed_u64(seed);
    while parts.len() > 1 {
        let a = ((rng.next_f64() * parts.len() as f64) as usize).min(parts.len() - 1);
        let picked = parts.swap_remove(a);
        let b = ((rng.next_f64() * parts.len() as f64) as usize).min(parts.len() - 1);
        parts[b].commute(picked);
    }
    parts.pop().expect("non-empty partition")
}

/// A synthetic but fully populated job record at the given grid coordinates,
/// with metric values derived from `x`.
fn synthetic_record(scenario_index: usize, policy: PolicyKind, seed: u64, x: f64) -> JobRecord {
    let policy_index = match policy {
        PolicyKind::PureLeach => 0,
        PolicyKind::Scheme1Adaptive => 1,
        PolicyKind::Scheme2Fixed => 2,
    };
    JobRecord {
        scenario_index,
        scenario: format!("scenario_{scenario_index}"),
        policy_index,
        policy,
        seed,
        config_hash: 0xfeed_beef,
        metrics: (0..METRIC_NAMES.len())
            .map(|m| Some(x + m as f64 * 0.25))
            .collect(),
        generated: 1_000 + seed,
        delivered: 900,
        events_processed: 50_000,
        end_time_nanos: 400_000_000_000,
        delay_p50_ms: Some(x.abs() + 1.0),
        delay_p95_ms: Some(x.abs() + 5.0),
        delay_p99_ms: None,
    }
}

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::PureLeach,
    PolicyKind::Scheme1Adaptive,
    PolicyKind::Scheme2Fixed,
];

proptest! {
    /// Mode selection is monotone in SNR: more SNR never selects a slower mode.
    #[test]
    fn mode_selection_is_monotone_in_snr(a in -10.0f64..45.0, b in -10.0f64..45.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let m_lo = TransmissionMode::best_for_snr(lo);
        let m_hi = TransmissionMode::best_for_snr(hi);
        match (m_lo, m_hi) {
            (Some(l), Some(h)) => prop_assert!(h.class_index() <= l.class_index()),
            (Some(_), None) => prop_assert!(false, "higher SNR lost the link"),
            _ => {}
        }
    }

    /// Frame airtime is monotone: a faster mode never takes longer on air,
    /// and airtime scales linearly with burst size.
    #[test]
    fn airtime_monotone_and_linear(count in 1u64..=32) {
        let frame = FrameSpec::paper_default();
        for pair in ALL_MODES.windows(2) {
            prop_assert!(frame.airtime(pair[0]) <= frame.airtime(pair[1]));
        }
        for mode in ALL_MODES {
            let one = frame.airtime(mode);
            prop_assert_eq!(frame.burst_airtime(mode, count), one * count);
        }
    }

    /// The adaptive threshold always stays within the four ABICM classes and
    /// snaps back to the top once the queue drains below the activation
    /// threshold, no matter what queue trajectory it observes.
    #[test]
    fn adaptive_threshold_invariants(queue_trace in prop::collection::vec(0usize..80, 1..200)) {
        let mut policy = AdaptiveThreshold::new(CaemConfig::paper_default());
        for &q in &queue_trace {
            policy.on_packet_arrival(q);
            let t = policy.current_threshold().expect("scheme 1 always has a threshold");
            prop_assert!(t.class_index() < 4);
        }
        // Draining below Q_threshold forces the energy-optimal threshold.
        policy.on_packets_sent(0);
        prop_assert_eq!(policy.current_threshold(), Some(TransmissionMode::Mbps2));
    }

    /// The ΔV predictor samples exactly every K arrivals and its delta equals
    /// the difference of the sampled queue lengths.
    #[test]
    fn predictor_samples_every_k(k in 1u32..=10, lens in prop::collection::vec(0usize..100, 1..120)) {
        let mut p = QueuePredictor::new(k);
        let mut samples: Vec<usize> = Vec::new();
        let mut deltas_seen = 0;
        for (i, &q) in lens.iter().enumerate() {
            let out = p.on_arrival(q);
            if (i as u32 + 1).is_multiple_of(k) {
                samples.push(q);
                if samples.len() >= 2 {
                    deltas_seen += 1;
                    let expected = samples[samples.len() - 1] as i64 - samples[samples.len() - 2] as i64;
                    prop_assert_eq!(out, Some(expected));
                } else {
                    prop_assert_eq!(out, None);
                }
            } else {
                prop_assert_eq!(out, None);
            }
        }
        prop_assert_eq!(p.samples_taken(), samples.len() as u64);
        let _ = deltas_seen;
    }

    /// Backoff samples always lie inside the window defined by the paper's
    /// formula, for any retry count.
    #[test]
    fn backoff_within_window(seed in any::<u64>(), failures in 0u32..10) {
        let config = BackoffConfig::paper_default();
        let mut s = BackoffScheduler::new(config, StreamRng::from_seed_u64(seed));
        for _ in 0..failures {
            s.record_failure();
        }
        let bound = config.max_backoff(failures);
        for _ in 0..50 {
            prop_assert!(s.next_backoff() <= bound);
        }
    }

    /// The packet buffer preserves FIFO order and never exceeds its capacity;
    /// enqueued == dequeued + still-queued + (for bounded buffers) drops are
    /// consistent.
    #[test]
    fn buffer_fifo_and_capacity(capacity in 1usize..60, ops in prop::collection::vec(0u8..3, 1..300)) {
        let mut buf = PacketBuffer::with_capacity(capacity);
        let mut next_id = 0u64;
        let mut expected_front = 0u64;
        for op in ops {
            match op {
                0 | 1 => {
                    let p = Packet::new(PacketId(next_id), 0, SimTime::from_millis(next_id));
                    let accepted = buf.enqueue(p);
                    if accepted {
                        next_id += 1;
                    } else {
                        prop_assert!(buf.is_full());
                        next_id += 1;
                        // Dropped packets never appear later: bump expectation only
                        // for accepted ids, so track via stats below instead.

                    }
                }
                _ => {
                    if let Some(p) = buf.dequeue() {
                        prop_assert!(p.id.0 >= expected_front);
                        expected_front = p.id.0 + 1;
                    }
                }
            }
            prop_assert!(buf.len() <= capacity);
        }
        let stats = buf.stats();
        prop_assert_eq!(stats.enqueued, stats.dequeued + buf.len() as u64);
    }

    /// Burst sizing never exceeds the configured cap and never invents
    /// packets that are not queued.
    #[test]
    fn burst_size_bounds(min in 1usize..5, extra in 0usize..20, queued in 0usize..200) {
        let policy = BurstPolicy::new(min, min + extra);
        let size = policy.burst_size(queued);
        prop_assert!(size <= min + extra);
        prop_assert!(size <= queued);
        if policy.should_transmit(queued, false) {
            prop_assert!(queued >= min);
        }
    }

    /// SimTime / Duration arithmetic: ordering is consistent with addition
    /// and subtraction saturates instead of wrapping.
    #[test]
    fn time_arithmetic_consistency(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let d = Duration::from_nanos(b);
        let later = t + d;
        prop_assert!(later >= t);
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(t - later, Duration::ZERO);
    }

    /// Welford running statistics agree with the naive two-pass computation.
    #[test]
    fn running_stats_match_naive(values in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut stats = RunningStats::new();
        stats.extend(values.iter().copied());
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((stats.mean() - mean).abs() < 1e-6);
        prop_assert!((stats.variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    /// The merge law, commutativity half: merging A into B and B into A give
    /// the same summary — count/min/max bit-for-bit (exact grade), mean and
    /// variance to within float rounding (analytic grade).
    #[test]
    fn stats_merge_commutes(
        xs in prop::collection::vec(-1e3f64..1e3, 1..80),
        ys in prop::collection::vec(-1e3f64..1e3, 1..80),
    ) {
        let mut a = RunningStats::new();
        a.extend(xs.iter().copied());
        let mut b = RunningStats::new();
        b.extend(ys.iter().copied());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9 * ab.mean().abs().max(1.0));
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7 * ab.variance().max(1.0));
    }

    /// The merge law, associativity half: any partition of the observations
    /// into chunks, merged through any random binary merge tree, summarizes
    /// like one sequential accumulator over the whole multiset.
    #[test]
    fn stats_merge_tree_matches_sequential(
        values in prop::collection::vec(-1e3f64..1e3, 1..300),
        chunk in 1usize..40,
        tree_seed in any::<u64>(),
    ) {
        let mut whole = RunningStats::new();
        whole.extend(values.iter().copied());
        let parts: Vec<RunningStats> = values
            .chunks(chunk)
            .map(|c| {
                let mut s = RunningStats::new();
                s.extend(c.iter().copied());
                s
            })
            .collect();
        let merged = merge_random_tree(parts, tree_seed);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((merged.variance() - whole.variance()).abs() < 1e-7 * whole.variance().max(1.0));
    }

    /// The concurrent accumulator obeys the same law: recording any
    /// partition into separate `ConcurrentStats` and merging them matches
    /// the sequential summary of the whole multiset.
    #[test]
    fn concurrent_stats_partition_matches_sequential(
        values in prop::collection::vec(-1e3f64..1e3, 1..300),
        chunk in 1usize..40,
    ) {
        let mut whole = RunningStats::new();
        whole.extend(values.iter().copied());
        let parts: Vec<ConcurrentStats> = values
            .chunks(chunk)
            .map(|c| {
                let s = ConcurrentStats::with_shards(4);
                for &v in c {
                    s.record(v);
                }
                s
            })
            .collect();
        let merged = Commute::merge_all(parts).expect("non-empty").snapshot();
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((merged.variance() - whole.variance()).abs() < 1e-7 * whole.variance().max(1.0));
    }

    /// The report boundary is bit-for-bit order-independent: shuffling and
    /// re-partitioning the record multiset arbitrarily before
    /// `ExperimentReport::from_records` yields byte-identical JSON, because
    /// the canonical (scenario, policy, seed) sort fixes the fold order.
    #[test]
    fn report_bytes_survive_any_record_ordering(
        cells in prop::collection::vec(any::<u64>(), 1..60),
        order_seed in any::<u64>(),
    ) {
        // Decode each raw u64 into grid coordinates (the vendored proptest
        // has no tuple strategies).  The metric value is derived from the
        // job key, not the raw u64: records sharing a key must be identical,
        // because the store's last-record-wins dedupe is an *append-order*
        // semantic — only the deduplicated multiset is order-independent.
        let records: Vec<JobRecord> = cells
            .iter()
            .map(|&c| {
                let s = (c % 3) as usize;
                let p = ((c / 3) % 3) as usize;
                let seed = (c / 9) % 6;
                let x = (s * 61 + p * 17) as f64 + seed as f64 * 3.5 - 50.0;
                synthetic_record(s, POLICIES[p], seed, x)
            })
            .collect();
        let baseline = ExperimentReport::from_records(records.clone());
        let shuffled: Vec<JobRecord> = permutation(records.len(), order_seed)
            .into_iter()
            .map(|i| records[i].clone())
            .collect();
        let reordered = ExperimentReport::from_records(shuffled);
        let a = serde_json::to_string_pretty(&baseline.to_json()).unwrap();
        let b = serde_json::to_string_pretty(&reordered.to_json()).unwrap();
        prop_assert_eq!(a, b);
    }
}
