//! End-to-end contracts of the experiment service over the deterministic
//! loopback transport: the daemon, the socket-worker protocol and the
//! client commands, with no listener and no filesystem.
//!
//! The headline property mirrors the distributed runner's: **the service
//! topology is unobservable in the results**.  A grid submitted to the
//! daemon and completed by N loopback workers — cleanly, under injected
//! frame faults (drop / duplicate / delay / truncate), or with a worker
//! dying mid-shard after streaming a partial batch — must fetch a report
//! **byte-identical** to a single-process `ExperimentSpec::run` of the
//! same resolved spec.
//!
//! The fault plan and the recovery-event counters are process-global, so
//! the tests serialize themselves on one mutex (the same reason
//! `tests/chaos.rs` is phase-structured).

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use caem_suite::wsnsim::distrib::{WorkerSpawner, WorkerTarget};
use caem_suite::wsnsim::faults::{self, FaultKind, FaultPlanConfig, FaultRole, RunEvent};
use caem_suite::wsnsim::serve::{
    loopback_pair, run_socket_worker, serve_connection, FrameLink, LoopbackLink, LoopbackSpawner,
    Message, ServiceClient, ServiceConfig, ServiceState, SocketWorkerOptions, WorkerExit,
    PROTOCOL_VERSION,
};
use caem_suite::wsnsim::spec::GridSpec;

/// A small but non-degenerate grid: two deployment shapes × the paper's
/// three policies × two seeds = 12 jobs, short horizon, few nodes.
const SPEC_DOC: &str = r#"{
  "caem_grid_spec": 1,
  "name": "serve_loopback",
  "replicates": 2,
  "duration_s": 10.0,
  "node_count": 12,
  "scenarios": [
    { "label": "uniform_8pps", "rate_pps": 8.0 },
    {
      "label": "corridor_8pps",
      "rate_pps": 8.0,
      "topology": { "corridor": { "width_fraction": 0.3 } }
    }
  ]
}"#;

const SEED: u64 = 9_001;

/// Process-global state (fault plan, event counters, shutdown flag) is
/// shared by every test in this binary; take the guard first.
fn exclusive() -> MutexGuard<'static, ()> {
    static GLOBAL: Mutex<()> = Mutex::new(());
    let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear_plan();
    faults::reset_events();
    guard
}

/// The canonical single-process report of [`SPEC_DOC`], rendered exactly
/// as the daemon renders a fetched report.
fn expected_bytes() -> String {
    let resolved = GridSpec::parse(SPEC_DOC)
        .expect("spec parses")
        .resolve(SEED, true)
        .expect("spec resolves");
    let report = resolved.spec.run();
    serde_json::to_string_pretty(&report.to_json()).expect("report renders")
}

/// Submit [`SPEC_DOC`], complete it with `workers` loopback workers and
/// return the fetched report text.
fn run_fleet(state: &std::sync::Arc<Mutex<ServiceState>>, workers: usize) -> String {
    let spawner = LoopbackSpawner::new(state.clone());
    let mut link = spawner.connect();
    let mut client = ServiceClient::new(&mut link);
    let sub = client
        .submit(SPEC_DOC, true, SEED)
        .expect("daemon accepts the spec");
    assert_eq!(sub.name, "serve_loopback");
    assert_eq!(sub.jobs, 12);

    let target = WorkerTarget::Endpoint("loopback".into());
    let handles: Vec<_> = (0..workers)
        .map(|i| spawner.spawn(&target, i, 1).expect("spawn worker"))
        .collect();

    let report = client
        .fetch_report(Duration::from_secs(300))
        .expect("grid completes");

    // Graceful fleet shutdown: every worker releases or finishes and
    // joins cleanly.
    spawner.stop_workers();
    for handle in handles {
        handle.join().expect("worker exits cleanly");
    }

    let status = client.status().expect("status");
    assert_eq!(status.completed, 1, "one grid completed");
    assert!(status.active.is_none(), "nothing left active");
    report
}

/// Send a request over a raw link and wait for its seq-matched response
/// (test-side mini client for driving the protocol by hand).
fn rpc(link: &mut LoopbackLink, msg: &Message) -> Message {
    link.send(&msg.encode()).expect("send");
    loop {
        let frame = link
            .recv(Some(Duration::from_secs(10)))
            .expect("recv")
            .expect("response before timeout");
        let reply = Message::decode(&frame).expect("well-formed response");
        if reply.seq() == msg.seq() {
            return reply;
        }
    }
}

fn hello(seq: u64, worker: &str) -> Message {
    Message::Hello {
        seq,
        protocol: PROTOCOL_VERSION,
        worker: worker.to_string(),
        threads: 1,
        expect_hash: None,
    }
}

#[test]
fn fleet_reports_are_byte_identical_clean_under_frame_faults_and_after_a_death() {
    let _guard = exclusive();
    let expected = expected_bytes();

    // Phase 1 — clean: three workers, four shards.
    let state = ServiceState::shared(ServiceConfig {
        shards_per_grid: 4,
        ..ServiceConfig::default()
    });
    assert_eq!(run_fleet(&state, 3), expected, "clean fleet equals run()");

    // Phase 2 — frame faults on every loopback link: dropped, duplicated,
    // delayed and truncated frames must all be absorbed by the protocol's
    // retransmission and count-reconciliation machinery.
    faults::install_plan(
        FaultPlanConfig {
            seed: 23,
            kinds: vec![FaultKind::Torn, FaultKind::Transient, FaultKind::Delay],
        },
        FaultRole::Coordinator,
    );
    let state = ServiceState::shared(ServiceConfig {
        shards_per_grid: 4,
        ..ServiceConfig::default()
    });
    assert_eq!(run_fleet(&state, 3), expected, "faulted fleet equals run()");
    assert!(
        faults::event_count(RunEvent::FaultInjected) > 0,
        "the chaos plan actually fired"
    );
    faults::clear_plan();

    // Phase 3 — a worker dies mid-shard: it claims a shard, streams the
    // record of its first job, then vanishes without ShardDone or Release.
    // The daemon must evict it on disconnect, re-grant only the still
    // unsettled jobs, and the surviving fleet must finish byte-identically.
    let state = ServiceState::shared(ServiceConfig {
        shards_per_grid: 2,
        ..ServiceConfig::default()
    });
    let spawner = LoopbackSpawner::new(state.clone());
    let mut clink = spawner.connect();
    let mut client = ServiceClient::new(&mut clink);
    client.submit(SPEC_DOC, true, SEED).expect("accepted");

    let mut dying = spawner.connect();
    assert!(matches!(
        rpc(&mut dying, &hello(1, "doomed")),
        Message::HelloAck { .. }
    ));
    let (grid, shard, jobs) = match rpc(&mut dying, &Message::Claim { seq: 2 }) {
        Message::Grant {
            grid, shard, jobs, ..
        } => (grid, shard, jobs),
        other => panic!("expected a grant, got {other:?}"),
    };
    assert!(!jobs.is_empty());
    let first = jobs[0].run();
    let line = serde_json::to_string(&first).expect("record serializes");
    dying
        .send(
            &Message::Records {
                grid,
                shard,
                lines: vec![line],
            }
            .encode(),
        )
        .expect("partial batch lands");
    drop(dying); // mid-shard death: no ShardDone, no Release

    assert_eq!(run_fleet_into(&spawner, &mut client, 2), expected);
}

/// Finish an already-submitted grid with `workers` workers on an existing
/// spawner/client pair (phase-3 helper: the submission happened earlier).
fn run_fleet_into(
    spawner: &LoopbackSpawner,
    client: &mut ServiceClient<'_>,
    workers: usize,
) -> String {
    let target = WorkerTarget::Endpoint("loopback".into());
    let handles: Vec<_> = (0..workers)
        .map(|i| spawner.spawn(&target, i, 1).expect("spawn worker"))
        .collect();
    let report = client
        .fetch_report(Duration::from_secs(300))
        .expect("grid completes");
    spawner.stop_workers();
    for handle in handles {
        handle.join().expect("worker exits cleanly");
    }
    report
}

#[test]
fn handshakes_reject_version_skew_and_manifest_hash_mismatch() {
    let _guard = exclusive();
    let state = ServiceState::shared(ServiceConfig::default());
    let spawner = LoopbackSpawner::new(state.clone());

    let run_worker_with = |opts: SocketWorkerOptions| {
        let (mut wlink, mut served) = loopback_pair();
        let state = state.clone();
        let server = std::thread::spawn(move || serve_connection(&mut served, &state));
        let exit = run_socket_worker(&mut wlink, &opts).expect("transport survives");
        drop(wlink);
        server.join().expect("server thread");
        exit
    };

    // Version skew.
    let mut opts = SocketWorkerOptions::new("skewed".to_string());
    opts.protocol = 99;
    match run_worker_with(opts) {
        WorkerExit::Rejected(reason) => {
            assert!(
                reason.contains("protocol"),
                "reason names the skew: {reason}"
            )
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // A pinned hash with no active grid to check it against.
    let mut opts = SocketWorkerOptions::new("early".to_string());
    opts.expect_hash = Some(42);
    match run_worker_with(opts) {
        WorkerExit::Rejected(reason) => {
            assert!(reason.contains("no active grid"), "got: {reason}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // A pinned hash that contradicts the active grid's manifest.
    let mut clink = spawner.connect();
    let mut client = ServiceClient::new(&mut clink);
    let sub = client.submit(SPEC_DOC, true, SEED).expect("accepted");
    let mut opts = SocketWorkerOptions::new("mismatched".to_string());
    opts.expect_hash = Some(sub.grid_hash ^ 1);
    match run_worker_with(opts) {
        WorkerExit::Rejected(reason) => {
            assert!(
                reason.contains("hash"),
                "reason names the mismatch: {reason}"
            )
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // And the matching pin is accepted: the worker runs the whole grid.
    let mut opts = SocketWorkerOptions::new("pinned".to_string());
    opts.expect_hash = Some(sub.grid_hash);
    let stop = opts.stop.clone();
    let (mut wlink, mut served) = loopback_pair();
    let state2 = state.clone();
    std::thread::spawn(move || serve_connection(&mut served, &state2));
    let worker = std::thread::spawn(move || run_socket_worker(&mut wlink, &opts));
    let report = client
        .fetch_report(Duration::from_secs(300))
        .expect("pinned worker completes the grid");
    assert_eq!(report, expected_bytes());
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    match worker.join().expect("worker thread") {
        Ok(WorkerExit::Finished(outcome)) => assert!(outcome.jobs_run > 0),
        other => panic!("expected a finished worker, got {other:?}"),
    }
}

#[test]
fn released_shards_are_reclaimable_immediately_without_ttl_wait() {
    let _guard = exclusive();
    // A lease TTL no test could sit out: if re-claiming depended on
    // expiry, the second claim below would see NoWork, not a grant.
    let state = ServiceState::shared(ServiceConfig {
        shards_per_grid: 2,
        lease_ttl: Some(Duration::from_secs(3600)),
        ..ServiceConfig::default()
    });
    let spawner = LoopbackSpawner::new(state.clone());
    let mut clink = spawner.connect();
    let mut client = ServiceClient::new(&mut clink);
    client.submit(SPEC_DOC, true, SEED).expect("accepted");

    // Worker A claims a shard, then gracefully hands it back untouched.
    let mut a = spawner.connect();
    assert!(matches!(
        rpc(&mut a, &hello(1, "a")),
        Message::HelloAck { .. }
    ));
    let (grid, shard) = match rpc(&mut a, &Message::Claim { seq: 2 }) {
        Message::Grant { grid, shard, .. } => (grid, shard),
        other => panic!("expected a grant, got {other:?}"),
    };
    assert!(matches!(
        rpc(
            &mut a,
            &Message::Release {
                seq: 3,
                grid,
                shard
            }
        ),
        Message::ReleaseAck { .. }
    ));

    // Worker B claims twice and must be granted *both* shards — including
    // the one A just released — long before any TTL could expire.
    let start = Instant::now();
    let mut b = spawner.connect();
    assert!(matches!(
        rpc(&mut b, &hello(1, "b")),
        Message::HelloAck { .. }
    ));
    let mut shards = Vec::new();
    for seq in [2, 3] {
        match rpc(&mut b, &Message::Claim { seq }) {
            Message::Grant { shard, .. } => shards.push(shard),
            other => panic!("expected a grant, got {other:?}"),
        }
    }
    shards.sort_unstable();
    assert_eq!(shards, vec![0, 1], "both shards grantable, no TTL wait");
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "re-claim happened immediately"
    );
}
