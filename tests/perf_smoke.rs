//! Tier-1 performance smoke check.
//!
//! Not a benchmark — `caem-bench`'s `netperf` binary measures real
//! throughput in release mode.  This test only guards against *gross*
//! regressions (an accidentally quadratic scan, a runaway event storm) by
//! running a small scenario under debug-friendly budgets, so a catastrophic
//! slowdown fails `cargo test` instead of waiting for someone to read the
//! bench numbers.

use std::time::{Duration as WallDuration, Instant};

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::{ScenarioConfig, SimulationRun};

#[test]
fn small_scenario_stays_inside_generous_budgets() {
    let cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 10.0, 99)
        .with_duration(Duration::from_secs(30));
    let queue_capacity = cfg.initial_queue_capacity();

    let started = Instant::now();
    let result = SimulationRun::new(cfg).run();
    let elapsed = started.elapsed();

    // Event-count budget: 20 nodes x 30 s at 10 pkt/s produce ~6k arrivals
    // and a few tens of thousands of MAC observations.  An order of magnitude
    // of slack on top of the ~60k events measured today still catches an
    // event storm.
    assert!(
        result.events_processed > 5_000,
        "suspiciously few events ({}) — did the simulation run at all?",
        result.events_processed
    );
    assert!(
        result.events_processed < 600_000,
        "event storm: {} events for a 20-node 30-second scenario",
        result.events_processed
    );

    // Wall-clock budget: this completes in well under a second even in debug
    // builds; 30 s of slack absorbs the slowest CI hardware while still
    // failing on quadratic blowups.
    assert!(
        elapsed < WallDuration::from_secs(30),
        "20-node 30-second scenario took {elapsed:?}"
    );

    // The pre-sized pending-event queue must never have regrown.
    assert!(
        result.queue_high_watermark <= queue_capacity,
        "event queue regrew: peak {} pending exceeds the pre-sized {}",
        result.queue_high_watermark,
        queue_capacity
    );

    // The always-compiled profiler instrumentation sits on the hot path
    // behind one disabled-by-default branch.  This run never enabled it, so
    // no samples may have accumulated — and the generous wall budget above
    // doubles as the disabled-path overhead smoke: the instrumented loop
    // must still clear it easily.
    assert!(
        result.profile.is_empty(),
        "profiler accumulated samples while disabled"
    );
}
