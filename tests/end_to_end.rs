//! Workspace-level integration tests: the whole stack (channel → PHY → MAC →
//! LEACH → CAEM → metrics) exercised through the public simulator API.

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::sweep::{compare_policies, PAPER_POLICIES};
use caem_suite::wsnsim::{ScenarioConfig, SimulationRun};

fn run_small(
    policy: PolicyKind,
    rate: f64,
    seed: u64,
    secs: u64,
) -> caem_suite::wsnsim::SimulationResult {
    SimulationRun::new(
        ScenarioConfig::small(policy, rate, seed).with_duration(Duration::from_secs(secs)),
    )
    .run()
}

#[test]
fn all_protocols_complete_and_deliver() {
    for policy in PAPER_POLICIES {
        let r = run_small(policy, 5.0, 1, 40);
        assert!(r.perf.generated() > 500, "{policy:?} generated too little");
        assert!(r.perf.delivered() > 0, "{policy:?} delivered nothing");
        assert!(r.delivery_rate() <= 1.0);
        assert!(r.bursts > 0);
        assert_eq!(r.nodes.len(), 20);
    }
}

#[test]
fn energy_accounting_is_conservative() {
    // Energy drawn from batteries == energy attributed in the ledger, and no
    // node ever reports negative remaining energy.
    for policy in PAPER_POLICIES {
        let r = run_small(policy, 5.0, 3, 40);
        let drawn: f64 = r.nodes.iter().map(|n| 10.0 - n.remaining_energy_j).sum();
        assert!(
            (r.ledger.total() - drawn).abs() < 1e-6,
            "{policy:?} ledger {} vs battery drawdown {drawn}",
            r.ledger.total()
        );
        assert!(r.nodes.iter().all(|n| n.remaining_energy_j >= 0.0));
    }
}

#[test]
fn per_node_counters_sum_to_global_counters() {
    let r = run_small(PolicyKind::Scheme1Adaptive, 8.0, 5, 40);
    let generated: u64 = r.nodes.iter().map(|n| n.generated).sum();
    let delivered: u64 = r.nodes.iter().map(|n| n.delivered).sum();
    assert_eq!(generated, r.perf.generated());
    assert_eq!(delivered, r.perf.delivered());
    assert!(delivered <= generated);
}

#[test]
fn identical_seeds_reproduce_identical_results() {
    let a = run_small(PolicyKind::Scheme2Fixed, 5.0, 77, 30);
    let b = run_small(PolicyKind::Scheme2Fixed, 5.0, 77, 30);
    assert_eq!(a.perf.generated(), b.perf.generated());
    assert_eq!(a.perf.delivered(), b.perf.delivered());
    assert_eq!(a.collisions, b.collisions);
    assert!((a.ledger.total() - b.ledger.total()).abs() < 1e-12);
    assert_eq!(
        a.energy.series().samples().len(),
        b.energy.series().samples().len()
    );
}

#[test]
fn paper_orderings_hold_on_a_medium_network() {
    // The qualitative claims of the evaluation, checked end to end on a
    // 40-node network: CAEM schemes beat pure LEACH on per-packet energy, and
    // Scheme 1 is at least as fair (queue spread) as Scheme 2.
    let comparison = compare_policies(|policy| {
        let mut cfg = ScenarioConfig::paper_default(policy, 5.0, 2024);
        cfg.node_count = 40;
        cfg.duration = Duration::from_secs(200);
        cfg
    });
    let leach = comparison.get(PolicyKind::PureLeach);
    let s1 = comparison.get(PolicyKind::Scheme1Adaptive);
    let s2 = comparison.get(PolicyKind::Scheme2Fixed);

    let e_leach = leach.per_packet_energy().joules_per_packet().unwrap();
    let e_s1 = s1.per_packet_energy().joules_per_packet().unwrap();
    let e_s2 = s2.per_packet_energy().joules_per_packet().unwrap();
    assert!(
        e_s1 < e_leach,
        "Scheme 1 ({e_s1}) must beat pure LEACH ({e_leach})"
    );
    assert!(
        e_s2 < e_leach,
        "Scheme 2 ({e_s2}) must beat pure LEACH ({e_leach})"
    );

    // Remaining energy ordering (Fig. 8): CAEM schemes retain more.
    let rem = |r: &caem_suite::wsnsim::SimulationResult| {
        r.energy.series().last().map(|(_, v)| v).unwrap()
    };
    assert!(rem(s1) > rem(leach));
    assert!(rem(s2) > rem(leach));

    // Fairness (Fig. 12): Scheme 1's queue spread is no worse than Scheme 2's.
    assert!(s1.fairness.mean_std_dev() <= s2.fairness.mean_std_dev() * 1.05);
}

#[test]
fn dead_network_stops_consuming() {
    // Tiny batteries: everything dies quickly, and after death the remaining
    // energy and the alive count are stable.
    let mut cfg = ScenarioConfig::small(PolicyKind::PureLeach, 20.0, 9);
    cfg.initial_energy_j = 0.3;
    cfg.duration = Duration::from_secs(120);
    let r = SimulationRun::new(cfg).run();
    assert_eq!(
        r.nodes_alive(),
        0,
        "0.3 J at 20 pkt/s must exhaust every node"
    );
    assert!(r.network_lifetime_secs(0.8).is_some());
    let last = r.energy.series().last().unwrap().1;
    assert!(
        last < 0.05,
        "average remaining energy should be ~0, got {last}"
    );
}

#[test]
fn unbounded_buffers_never_drop() {
    let cfg = ScenarioConfig::small(PolicyKind::Scheme2Fixed, 10.0, 13)
        .with_duration(Duration::from_secs(60))
        .with_unbounded_buffers();
    let r = SimulationRun::new(cfg).run();
    assert_eq!(r.perf.dropped_overflow(), 0);
    // Scheme 2 with unbounded buffers builds real queue spread — the Fig. 12
    // measurement is meaningful.
    assert!(r.fairness.snapshots() > 10);
}

#[test]
fn higher_load_consumes_more_energy() {
    let low = run_small(PolicyKind::PureLeach, 2.0, 21, 60);
    let high = run_small(PolicyKind::PureLeach, 20.0, 21, 60);
    assert!(high.ledger.total() > low.ledger.total());
    assert!(high.perf.generated() > low.perf.generated() * 5);
}
