//! Contract tests for the sharded experiment engine.
//!
//! The engine replaces the nested `par_iter` fan-out (which oversubscribed
//! the machine by loads × cores) with one flat (scenario × policy × seed)
//! job list run through a single parallel layer.  These tests pin the
//! properties the replicated-evaluation methodology rests on:
//!
//! * the grid enumerates every combination exactly once,
//! * a replicated grid is deterministic given its seed set,
//! * confidence-interval half-widths shrink as replicates are added,
//! * peak live worker threads never exceed the process-wide budget.

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::experiment::{ExperimentSpec, ScenarioSpec, METRIC_NAMES};
use caem_suite::wsnsim::{ScenarioConfig, Topology};

fn base(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small(PolicyKind::PureLeach, 8.0, seed).with_duration(Duration::from_secs(10))
}

fn diverse_spec(replicates: usize) -> ExperimentSpec {
    ExperimentSpec::paper_policies(
        vec![
            ScenarioSpec::new("uniform", base(0)),
            ScenarioSpec::new(
                "hotspots",
                base(0).with_topology(Topology::GaussianClusters {
                    clusters: 3,
                    sigma_m: 10.0,
                }),
            ),
            ScenarioSpec::new(
                "corridor_churn",
                base(0)
                    .with_topology(Topology::Corridor {
                        width_fraction: 0.3,
                    })
                    .with_energy_spread(0.3)
                    .with_churn_mttf_s(40.0),
            ),
        ],
        7_000,
        replicates,
    )
}

#[test]
fn grid_enumerates_every_job_exactly_once() {
    let spec = diverse_spec(5);
    let jobs = spec.enumerate_jobs();
    assert_eq!(jobs.len(), 3 * 3 * 5);
    let mut seen = std::collections::HashSet::new();
    for job in &jobs {
        assert!(
            seen.insert((job.scenario, format!("{:?}", job.policy), job.seed)),
            "duplicate job {:?}/{:?}/{}",
            job.scenario,
            job.policy,
            job.seed
        );
        assert_eq!(job.config.policy, job.policy);
        assert_eq!(job.config.seed, job.seed);
    }
}

#[test]
fn replicated_grid_is_deterministic_given_the_seed_set() {
    let a = diverse_spec(2).run();
    let b = diverse_spec(2).run();
    assert_eq!(a.job_count, b.job_count);
    assert_eq!(a.cells.len(), b.cells.len());
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.scenario, cb.scenario);
        assert_eq!(ca.policy, cb.policy);
        for (name, (sa, sb)) in METRIC_NAMES.iter().zip(ca.metrics.iter().zip(&cb.metrics)) {
            assert_eq!(sa.count(), sb.count());
            assert_eq!(
                sa.mean().to_bits(),
                sb.mean().to_bits(),
                "{}/{:?}/{name} mean must be bit-identical",
                ca.scenario,
                ca.policy
            );
            assert_eq!(
                sa.ci95_half_width().to_bits(),
                sb.ci95_half_width().to_bits()
            );
        }
    }
}

#[test]
fn ci_half_widths_shrink_with_replicate_count() {
    // One scenario, one policy, growing seed pools drawn from the same base:
    // the CI half-width on delivery rate must tighten as replicates grow.
    let spec_for = |replicates: usize| ExperimentSpec {
        scenarios: vec![ScenarioSpec::new("uniform", base(0))],
        policies: vec![PolicyKind::Scheme1Adaptive],
        seeds: (0..replicates as u64).map(|i| 9_100 + i).collect(),
    };
    let few = spec_for(3).run();
    let many = spec_for(12).run();
    let hw = |report: &caem_suite::wsnsim::ExperimentReport| {
        report.cells[0]
            .metric("delivery_rate")
            .unwrap()
            .ci95_half_width()
    };
    assert!(hw(&few) > 0.0, "replicates must disagree at least a little");
    assert!(
        hw(&many) < hw(&few),
        "12-seed CI ({}) must be tighter than 3-seed CI ({})",
        hw(&many),
        hw(&few)
    );
    assert_eq!(many.cells[0].metric("delivery_rate").unwrap().count(), 12);
}

#[test]
fn grid_runs_in_a_single_parallel_layer_within_the_thread_budget() {
    // The acceptance-criteria grid: 3 scenarios x 3 policies x 5 seeds.
    let spec = diverse_spec(5);
    assert_eq!(spec.scenarios.len(), 3);
    assert_eq!(spec.policies.len(), 3);
    assert_eq!(spec.seeds.len(), 5);
    let report = spec.run();
    assert_eq!(report.job_count, 45);
    // The engine fans the flat job list out exactly once; with every call
    // site drawing from rayon's process-wide budget, the peak number of live
    // spawned workers can never exceed the cap — the property whose absence
    // was the nested-sweep oversubscription bug.
    assert!(
        rayon::peak_live_workers() <= rayon::process_thread_cap(),
        "peak {} workers exceeded process cap {}",
        rayon::peak_live_workers(),
        rayon::process_thread_cap()
    );
    // Replication happened: every cell aggregated one value per seed, and
    // the report carries a CI alongside every mean.
    for cell in &report.cells {
        for stats in &cell.metrics {
            assert_eq!(stats.count(), 5);
        }
    }
}

#[test]
fn common_random_numbers_pair_policies_within_a_seed() {
    // The same seed must present every policy with the identical offered
    // load — the paired-comparison property the paper's evaluation uses.
    let spec = ExperimentSpec::paper_policies(vec![ScenarioSpec::new("uniform", base(0))], 42, 2);
    let jobs = spec.enumerate_jobs();
    let results: Vec<_> =
        caem_suite::wsnsim::run_configs(&jobs.iter().map(|j| j.config.clone()).collect::<Vec<_>>());
    for (job, result) in jobs.iter().zip(&results) {
        for (other_job, other) in jobs.iter().zip(&results) {
            if job.seed == other_job.seed {
                assert_eq!(
                    result.perf.generated(),
                    other.perf.generated(),
                    "same seed ⇒ same offered load for every policy"
                );
            }
        }
    }
}
