//! Contract tests for the `caem_metrics::prof` time-breakdown profiler.
//!
//! The profiler's core promise is that it **observes without perturbing**:
//! it only reads wall clocks, never the simulation's RNG or state, so a
//! profiled run must produce bit-identical results and byte-identical
//! report artifacts.  These tests pin that promise, the `Commute` law of
//! profile shards (merging in any partition and any order is exact), and
//! the Chrome trace export.
//!
//! The enable gate is process-global, so every test that flips it runs
//! under one mutex and restores the disabled state before releasing it.

use caem_suite::caem::policy::PolicyKind;
use caem_suite::metrics::prof::{self, Breakdown, ProfKey, Profile, PROF_KEYS};
use caem_suite::metrics::Commute;
use caem_suite::simcore::rng::StreamRng;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::experiment::{ExperimentSpec, ScenarioSpec};
use caem_suite::wsnsim::{ScenarioConfig, SimulationResult, SimulationRun};
use proptest::prelude::*;

static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run the closure with the profiler enabled, restoring the disabled state
/// afterwards even on panic (via the poisoned-lock path of the next test).
fn with_profiler<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    let _guard = GATE.lock().unwrap_or_else(|p| p.into_inner());
    prof::set_enabled(enabled);
    let out = f();
    prof::set_enabled(false);
    out
}

fn small_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 10.0, seed)
        .with_duration(Duration::from_secs(20))
}

fn run_small(seed: u64) -> SimulationResult {
    SimulationRun::new(small_config(seed)).run()
}

/// The simulation-visible outcome of a run, bit-exact.
fn outcome_fingerprint(result: &SimulationResult) -> (u64, u64, u64, u64, Vec<u64>) {
    (
        result.events_processed,
        result.perf.generated(),
        result.perf.delivered(),
        result.collisions,
        result
            .nodes
            .iter()
            .map(|n| n.remaining_energy_j.to_bits())
            .collect(),
    )
}

#[test]
fn profiled_run_is_bit_identical_to_clean() {
    let clean = with_profiler(false, || run_small(42));
    let profiled = with_profiler(true, || run_small(42));
    assert_eq!(
        outcome_fingerprint(&clean),
        outcome_fingerprint(&profiled),
        "profiling must not perturb the simulation"
    );
    assert!(
        clean.profile.is_empty(),
        "disabled runs must not accumulate profile samples"
    );
    assert!(
        !profiled.profile.is_empty(),
        "enabled runs must accumulate profile samples"
    );
    // Every processed event is attributed to exactly one event-kind span.
    let event_counts: u64 = PROF_KEYS
        .into_iter()
        .filter(|k| !k.is_subsystem())
        .map(|k| profiled.profile.count(k))
        .sum();
    assert_eq!(
        event_counts, profiled.events_processed,
        "event-kind span counts must partition events_processed"
    );
}

#[test]
fn profiled_experiment_report_is_byte_identical() {
    let spec = |seed: u64| {
        ExperimentSpec::paper_policies(
            vec![ScenarioSpec::new("uniform", small_config(seed))],
            seed,
            2,
        )
    };
    let clean = with_profiler(false, || spec(7).run());
    let profiled = with_profiler(true, || spec(7).run());
    let clean_json = serde_json::to_string_pretty(&clean.to_json()).expect("serialize");
    let profiled_json = serde_json::to_string_pretty(&profiled.to_json()).expect("serialize");
    assert_eq!(
        clean_json, profiled_json,
        "the report artifact must be byte-identical under profiling"
    );
}

#[test]
fn trace_capture_produces_chrome_trace_events() {
    let (json, events, dropped) = with_profiler(true, || {
        prof::start_trace(100_000);
        run_small(3);
        prof::stop_trace_json().expect("trace was started")
    });
    assert!(events > 0, "a simulated run must record trace slices");
    assert_eq!(dropped, 0, "capacity must be ample for a small run");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"cat\":\"subsystem\""));
    assert!(json.contains("\"cat\":\"event\""));
    // Stopping again without starting is a clean no-op.
    assert!(prof::stop_trace_json().is_none());
}

/// A deterministic permutation of `0..n` driven by the simulator's RNG
/// (same idiom as `tests/property_based.rs`).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StreamRng::from_seed_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = ((rng.next_f64() * (i + 1) as f64) as usize).min(i);
        idx.swap(i, j);
    }
    idx
}

/// Fold profile shards with a random binary merge tree.
fn merge_random_tree(mut parts: Vec<Profile>, seed: u64) -> Profile {
    let mut rng = StreamRng::from_seed_u64(seed);
    while parts.len() > 1 {
        let a = ((rng.next_f64() * parts.len() as f64) as usize).min(parts.len() - 1);
        let picked = parts.swap_remove(a);
        let b = ((rng.next_f64() * parts.len() as f64) as usize).min(parts.len() - 1);
        parts[b].commute(picked);
    }
    parts.pop().expect("non-empty partition")
}

proptest! {
    /// Profile merging is exact integer addition: any partition of a sample
    /// stream into shards, merged in any tree order, reproduces the
    /// sequential accumulation bit for bit.
    #[test]
    fn profile_commute_is_exact_over_random_partitions(
        samples in prop::collection::vec(any::<u64>(), 1..120),
        order_seed in any::<u64>(),
        cuts_seed in any::<u64>(),
        tree_seed in any::<u64>(),
    ) {
        // Each raw sample carries a (count, nanos) pair in its halves,
        // shifted down so 120 stacked samples stay away from overflow.
        let split = |raw: u64| (raw >> 48, (raw & 0xffff_ffff) >> 8);
        // Sequential reference, in canonical order.
        let mut reference = Profile::new();
        for (i, &raw) in samples.iter().enumerate() {
            let key = PROF_KEYS[i % PROF_KEYS.len()];
            let (count, nanos) = split(raw);
            reference.add(key, count, nanos);
        }
        // Random partition of a random permutation of the samples.
        let order = permutation(samples.len(), order_seed);
        let mut cut_rng = StreamRng::from_seed_u64(cuts_seed);
        let mut parts: Vec<Profile> = vec![Profile::new()];
        for &i in &order {
            if cut_rng.next_f64() < 0.25 {
                parts.push(Profile::new());
            }
            let key = PROF_KEYS[i % PROF_KEYS.len()];
            let (count, nanos) = split(samples[i]);
            parts.last_mut().expect("non-empty").add(key, count, nanos);
        }
        let merged = merge_random_tree(parts, tree_seed);
        prop_assert_eq!(merged, reference);
    }

    /// Breakdown shards observed on disjoint scenario sets and merged in a
    /// random order agree with the sequentially built breakdown on every
    /// per-key aggregate, including which scenario label holds the min/max.
    #[test]
    fn breakdown_commute_matches_sequential_observation(
        shares in prop::collection::vec(1u64..1000, 2..40),
        order_seed in any::<u64>(),
    ) {
        // Distinct weight per index so shares never tie: sequential
        // observation keeps the first-seen extreme on an exact tie while
        // the merge breaks ties lexicographically, and this test pins the
        // tie-free agreement, not the tie-breaking policy.
        let observation = |i: usize, weight: u64| {
            let w = weight * 64 + i as u64;
            let mut p = Profile::new();
            p.add(ProfKey::Mac, 1, w);
            // Two event kinds so neither share degenerates to a constant
            // 1.0 (the share denominator is the summed event time).
            p.add(ProfKey::EvSenseChannel, 1, 100_000);
            p.add(ProfKey::EvRoundStart, 1, w);
            (format!("scenario_{i}"), p)
        };
        let mut reference = Breakdown::new();
        for (i, &w) in shares.iter().enumerate() {
            let (label, p) = observation(i, w);
            reference.observe(&label, &p);
        }
        // One shard per observation, merged in a shuffled order.
        let mut merged = Breakdown::new();
        for &i in &permutation(shares.len(), order_seed) {
            let (label, p) = observation(i, shares[i]);
            let mut shard = Breakdown::new();
            shard.observe(&label, &p);
            merged.commute(shard);
        }
        prop_assert_eq!(merged.observations(), reference.observations());
        for key in [ProfKey::Mac, ProfKey::EvSenseChannel] {
            let (m, r) = (merged.key_stats(key), reference.key_stats(key));
            prop_assert_eq!(m.total_count(), r.total_count());
            prop_assert_eq!(m.total_nanos(), r.total_nanos());
            prop_assert_eq!(m.min_share().to_bits(), r.min_share().to_bits());
            prop_assert_eq!(m.max_share().to_bits(), r.max_share().to_bits());
            prop_assert_eq!(m.min_label(), r.min_label());
            prop_assert_eq!(m.max_label(), r.max_label());
            prop_assert!((m.mean_share() - r.mean_share()).abs() < 1e-12);
        }
    }
}
