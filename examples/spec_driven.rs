//! Declarative experiment specs: define a grid as a JSON document, resolve
//! it deterministically into an `ExperimentSpec`, and run it — no Rust
//! edits, no recompiles, and typed errors (with field paths) for every
//! malformed document.
//!
//! ```bash
//! cargo run --release --example spec_driven
//! ```

use caem_suite::wsnsim::spec::{GridSpec, ResolvedSpec};

const SPEC: &str = r#"{
  "caem_grid_spec": 1,
  "name": "spec_driven_demo",
  "base_seed": 7,
  "replicates": 3,
  "node_count": 20,
  "duration_s": 20.0,
  "scenarios": [
    { "label": "uniform_8pps", "rate_pps": 8.0 },
    {
      "label": "corridor_8pps",
      "rate_pps": 8.0,
      "topology": { "corridor": { "width_fraction": 0.3 } }
    }
  ]
}"#;

fn main() {
    // 1. Parse: strict, nothing silently ignored.
    let doc = GridSpec::parse(SPEC).expect("demo spec parses");

    // 2. Resolve: deterministic in (document, default seed, quick flag).
    let resolved = doc.resolve(7, false).expect("demo spec resolves");
    let spec = resolved.spec;

    // The canonical resolved form carries per-scenario config hashes — the
    // identity the persistence layer and the distributed manifest key on.
    println!("resolved grid:");
    for (label, hash, _config) in &ResolvedSpec::of(&spec).scenarios {
        println!("  {label:<16} config_hash {hash:016x}");
    }

    // 3. Run the grid through the engine's single parallel layer.
    let report = spec.run();
    println!(
        "\n{} jobs -> {} cells over seeds {:?}",
        report.job_count,
        report.cells.len(),
        report.seeds
    );
    for cell in &report.cells {
        let delivery = cell.metric("delivery_rate").expect("known metric");
        println!(
            "  {:<16} {:?}: delivery {:.3} +/- {:.3}",
            cell.scenario,
            cell.policy,
            delivery.mean(),
            delivery.ci95_half_width()
        );
    }

    // 4. Malformed documents fail with typed, field-path errors — the same
    //    errors `experiment --spec` surfaces verbatim before exiting 2.
    let typo = SPEC.replace("rate_pps", "rate_pp");
    let err = GridSpec::parse(&typo).expect_err("misspelled field rejected");
    println!("\nmisspelled field rejected: {err}");
}
