//! Environment-monitoring scenario: the "sensors scattered in a forest for
//! months" deployment the paper's introduction motivates.
//!
//! A larger, sparser field than the evaluation default (150 m × 150 m), a low
//! steady reporting rate, and a long horizon.  The example compares the three
//! protocols on the metric that matters for this deployment — how long the
//! network keeps observing — and shows the energy breakdown per protocol.
//!
//! ```bash
//! cargo run --release --example forest_monitoring
//! ```

use caem_suite::channel::Field;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::sweep::{compare_policies, PAPER_POLICIES};
use caem_suite::wsnsim::ScenarioConfig;

fn main() {
    let comparison = compare_policies(|policy| {
        let mut cfg = ScenarioConfig::paper_default(policy, 2.0, 7);
        cfg.field = Field::new(150.0, 150.0);
        cfg.node_count = 80;
        cfg.initial_energy_j = 5.0;
        cfg.duration = Duration::from_secs(1_200);
        cfg
    });

    println!("== forest monitoring: 80 nodes, 150 m x 150 m, 2 pkt/s, 5 J batteries ==\n");
    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "protocol", "alive@end", "delivered", "mJ/packet", "delay (ms)", "lifetime (s)"
    );
    for &policy in &PAPER_POLICIES {
        let r = comparison.get(policy);
        println!(
            "{:<28} {:>12} {:>12} {:>14.3} {:>14.1} {:>12}",
            policy.to_string().chars().take(28).collect::<String>(),
            r.nodes_alive(),
            r.perf.delivered(),
            r.per_packet_energy()
                .millijoules_per_packet()
                .unwrap_or(f64::NAN),
            r.perf.average_delay_ms(),
            r.network_lifetime_secs(0.8)
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "> horizon".into()),
        );
    }

    println!("\nenergy breakdown (joules, network-wide):");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "protocol", "data-tx", "data-rx", "startup", "tone", "sleep"
    );
    use caem_suite::energy::battery::EnergyCategory as Cat;
    for &policy in &PAPER_POLICIES {
        let l = &comparison.get(policy).ledger;
        println!(
            "{:<28} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            policy.to_string().chars().take(28).collect::<String>(),
            l.by_category(Cat::DataTransmit),
            l.by_category(Cat::DataReceive),
            l.by_category(Cat::Startup),
            l.by_category(Cat::ToneTransmit) + l.by_category(Cat::ToneReceive),
            l.by_category(Cat::Sleep),
        );
    }
}
