//! Persistent, resumable experiment grids end to end: run a grid into a
//! JSONL store, "crash" it by tearing the store mid-record, resume it, and
//! show that the resumed and offline-re-aggregated reports are bit-identical
//! to the uninterrupted run — then let CI-driven sequential stopping decide
//! the replicate count instead of guessing it up front.
//!
//! ```bash
//! cargo run --release --example resumable_experiment
//! ```

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::experiment::{ExperimentSpec, ScenarioSpec, SequentialStopping};
use caem_suite::wsnsim::persist::ExperimentStore;
use caem_suite::wsnsim::{ScenarioConfig, Topology};

fn main() {
    let dir = std::env::temp_dir().join(format!("caem_resumable_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create demo dir");
    let store_path = dir.join("grid.jsonl");

    let base =
        ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 0).with_duration(Duration::from_secs(20));
    let spec = ExperimentSpec::paper_policies(
        vec![
            ScenarioSpec::new("uniform", base.clone()),
            ScenarioSpec::new(
                "hotspots",
                base.with_topology(Topology::GaussianClusters {
                    clusters: 3,
                    sigma_m: 12.0,
                }),
            ),
        ],
        4_100,
        4,
    );

    // 1. The uninterrupted run, streaming every job to the store.
    let mut store = ExperimentStore::open(&store_path).expect("open store");
    let clean = spec.run_with_store(&mut store);
    println!(
        "clean run: {} jobs simulated into {}",
        store.len(),
        store_path.display()
    );
    drop(store);
    let clean_json = serde_json::to_string(&clean.to_json()).expect("report serializes");

    // 2. Simulate a crash: drop the last three records and tear a fourth
    //    mid-line, exactly what an interrupted `write_all` leaves behind.
    let text = std::fs::read_to_string(&store_path).expect("read store");
    let lines: Vec<&str> = text.lines().collect();
    let mut torn = lines[..lines.len() - 3].join("\n");
    torn.push_str("\n{\"scenario_index\":1,\"scenario\":\"hot");
    std::fs::write(&store_path, torn).expect("write torn store");

    // 3. Resume: the loader skips the torn line with a warning, the engine
    //    re-runs only the missing jobs, and the report comes out identical.
    let mut store = ExperimentStore::open(&store_path).expect("re-open store");
    println!(
        "after the crash: {} of {} jobs on disk ({} torn line skipped)",
        store.len(),
        spec.job_count(),
        store.skipped_lines()
    );
    let before = store.len();
    let resumed = spec.run_with_store(&mut store);
    println!(
        "resume re-ran {} jobs, reused {}",
        store.len() - before,
        before
    );
    let resumed_json = serde_json::to_string(&resumed.to_json()).expect("report serializes");
    assert_eq!(
        clean_json, resumed_json,
        "resumed report must be bit-identical to the uninterrupted run"
    );
    println!("resumed report is bit-identical to the clean run");

    // 4. Offline re-aggregation: the report rebuilt from JSONL alone.
    let offline = ExperimentStore::load(&store_path)
        .expect("load store")
        .rebuild_report();
    assert_eq!(
        serde_json::to_string(&offline.to_json()).expect("report serializes"),
        clean_json,
        "offline re-aggregation must match the in-memory report"
    );
    println!("offline re-aggregation from JSONL matches too");

    // 5. Sequential stopping: instead of fixing the replicate count, add
    //    batches until the delivery-rate CI is tight enough (or a cap hits).
    let seq_store_path = dir.join("sequential.jsonl");
    let mut seq_store = ExperimentStore::open(&seq_store_path).expect("open store");
    let stop = SequentialStopping {
        metric: "delivery_rate".to_string(),
        target_half_width: 0.02,
        batch: 2,
        max_replicates: 10,
    };
    let outcome = spec.run_sequential(&mut seq_store, &stop);
    println!(
        "\nsequential stopping on delivery_rate (target +/- {}):",
        stop.target_half_width
    );
    for (i, round) in outcome.rounds.iter().enumerate() {
        println!(
            "  round {}: {} replicates/cell, worst 95% CI half-width {:.4}",
            i + 1,
            round.replicates,
            round.worst_half_width
        );
    }
    println!(
        "{} with {} replicates/cell ({} jobs persisted for future reuse)",
        if outcome.converged {
            "converged"
        } else {
            "cap reached"
        },
        outcome
            .rounds
            .last()
            .expect("ran at least one round")
            .replicates,
        seq_store.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
