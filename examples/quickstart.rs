//! Quickstart: simulate one small CAEM-LEACH network and print what happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use caem_suite::caem::policy::PolicyKind;
use caem_suite::energy::battery::EnergyCategory;
use caem_suite::wsnsim::{ScenarioConfig, SimulationRun};

fn main() {
    // A 20-node network running the full CAEM Scheme 1 stack (adaptive
    // threshold adjustment on top of LEACH) for 60 simulated seconds.
    let config = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 5.0, 42);
    println!(
        "simulating {} nodes for {} under {}",
        config.node_count, config.duration, config.policy
    );

    let result = SimulationRun::new(config).run();

    println!("\n== outcome ==");
    println!("packets generated : {}", result.perf.generated());
    println!("packets delivered : {}", result.perf.delivered());
    println!("delivery rate     : {:.1}%", result.delivery_rate() * 100.0);
    println!(
        "mean packet delay : {:.1} ms",
        result.perf.average_delay_ms()
    );
    println!(
        "bursts / collisions: {} / {}",
        result.bursts, result.collisions
    );
    println!(
        "energy per packet : {:.3} mJ",
        result
            .per_packet_energy()
            .millijoules_per_packet()
            .unwrap_or(f64::NAN)
    );
    println!(
        "average remaining energy: {:.2} J of {:.0} J",
        result.energy.series().last().map(|(_, v)| v).unwrap_or(0.0),
        10.0
    );

    println!("\n== where the energy went (network-wide) ==");
    for category in EnergyCategory::ALL {
        let joules = result.ledger.by_category(category);
        if joules > 0.0 {
            println!("  {category:<10} {joules:>8.3} J");
        }
    }
}
