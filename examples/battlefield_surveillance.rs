//! Battlefield-surveillance scenario: bursty, event-driven traffic.
//!
//! The paper motivates CAEM with surveillance deployments where "a smooth
//! gathered data flow from a particular observing sensor is also needed to
//! keep necessary real-time surveillance on the related area".  This example
//! uses the two-state bursty (MMPP) source — quiet background reporting with
//! intense bursts when an event is detected — and looks at the trade-off the
//! paper's conclusion highlights: Scheme 2 saves the most energy but starves
//! the very sensors whose bursts matter; Scheme 1 keeps the queue spread (and
//! hence the worst-case reporting delay) in check.
//!
//! ```bash
//! cargo run --release --example battlefield_surveillance
//! ```

use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::config::TrafficModel;
use caem_suite::wsnsim::sweep::{compare_policies, PAPER_POLICIES};
use caem_suite::wsnsim::ScenarioConfig;

fn main() {
    let comparison = compare_policies(|policy| {
        let mut cfg = ScenarioConfig::paper_default(policy, 5.0, 99);
        cfg.traffic = TrafficModel::Bursty {
            quiet_rate_pps: 1.0,
            burst_rate_pps: 40.0,
            mean_quiet_s: 18.0,
            mean_burst_s: 2.0,
        };
        cfg.duration = Duration::from_secs(400);
        // Surveillance data is delay-sensitive: keep the real (bounded)
        // buffers so overflow shows up as lost observations.
        cfg
    });

    println!("== battlefield surveillance: bursty event traffic (MMPP), 100 nodes ==\n");
    println!(
        "{:<28} {:>12} {:>14} {:>14} {:>16} {:>14}",
        "protocol", "delivery", "p95 delay ms", "mJ/packet", "queue stddev", "dropped"
    );
    for &policy in &PAPER_POLICIES {
        let r = comparison.get(policy);
        let dropped = r.perf.dropped_overflow() + r.perf.dropped_abandoned();
        println!(
            "{:<28} {:>11.1}% {:>14.1} {:>14.3} {:>16.2} {:>14}",
            policy.to_string().chars().take(28).collect::<String>(),
            r.delivery_rate() * 100.0,
            r.perf.delay_quantile_ms(0.95).unwrap_or(f64::NAN),
            r.per_packet_energy()
                .millijoules_per_packet()
                .unwrap_or(f64::NAN),
            r.fairness.mean_std_dev(),
            dropped,
        );
    }

    println!(
        "\nreading: Scheme 1 should sit between pure LEACH (most energy per packet) and \
         Scheme 2 (lowest energy, but the largest queue spread / most starvation under bursts)."
    );
}
