//! Using the CAEM policy API directly, plus a small tuning sweep of the
//! Scheme 1 parameters (K and Q_threshold).
//!
//! The first half drives an [`AdaptiveThreshold`] policy by hand to show the
//! threshold trajectory the Fig. 6 pseudo-code produces; the second half runs
//! short simulations over a (K, Q_threshold) grid to show how the paper's
//! choice (K = 5, Q = 15) trades energy against delay.
//!
//! ```bash
//! cargo run --release --example threshold_tuning
//! ```

use caem_suite::caem::config::CaemConfig;
use caem_suite::caem::policy::{AdaptiveThreshold, PolicyKind, ThresholdPolicy};
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::{ScenarioConfig, SimulationRun};

fn main() {
    // --- Part 1: the threshold trajectory on a synthetic queue trace -------
    let mut policy = AdaptiveThreshold::paper_default();
    println!("== threshold trajectory for a growing-then-draining queue ==");
    println!("{:<10} {:>12} {:>22}", "arrival", "queue len", "threshold");
    let mut queue = 0usize;
    for arrival in 1..=40 {
        // Queue grows by one per arrival for 30 arrivals, then drains fast.
        if arrival <= 30 {
            queue += 1;
        } else {
            queue = queue.saturating_sub(6);
        }
        policy.on_packet_arrival(queue);
        if arrival % 5 == 0 {
            println!(
                "{:<10} {:>12} {:>22}",
                arrival,
                queue,
                policy
                    .current_threshold()
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "none".into())
            );
        }
    }
    policy.on_packets_sent(2);
    println!(
        "after the burst drains the queue: threshold back to {}",
        policy.current_threshold().unwrap()
    );

    // --- Part 2: (K, Q_threshold) tuning grid ------------------------------
    println!("\n== Scheme 1 tuning grid (30 nodes, 5 pkt/s, 150 s) ==");
    println!(
        "{:<8} {:<14} {:>14} {:>14} {:>14}",
        "K", "Q_threshold", "mJ/packet", "delivery", "delay ms"
    );
    for k in [1u32, 5, 10] {
        for q in [5usize, 15, 30] {
            let mut cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 5.0, 11)
                .with_duration(Duration::from_secs(150));
            cfg.node_count = 30;
            cfg.caem = CaemConfig {
                sampling_interval_packets: k,
                queue_threshold: q,
                ..CaemConfig::paper_default()
            };
            let r = SimulationRun::new(cfg).run();
            println!(
                "{:<8} {:<14} {:>14.3} {:>13.1}% {:>14.1}",
                k,
                q,
                r.per_packet_energy()
                    .millijoules_per_packet()
                    .unwrap_or(f64::NAN),
                r.delivery_rate() * 100.0,
                r.perf.average_delay_ms()
            );
        }
    }
    println!("\npaper setting: K = 5, Q_threshold = 15.");
}
