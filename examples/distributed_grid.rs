//! Distributed experiment grids: one grid, several workers, bit-identical
//! results.
//!
//! The distributed runner's whole contract is that the execution topology is
//! unobservable: however many workers split the grid — and however many of
//! them die along the way — the merged report equals the single-process run
//! byte for byte.  This example drives the real shard-claim protocol with
//! in-process worker threads (the `experiment` binary's `--workers N` flag
//! does the same thing with separate OS processes) and checks the
//! equivalence explicitly.
//!
//! ```bash
//! cargo run --release --example distributed_grid
//! ```

use caem::policy::PolicyKind;
use caem_simcore::time::Duration;
use caem_wsnsim::distrib::{DistribOptions, GridManifest, ShardLayout, ThreadSpawner};
use caem_wsnsim::experiment::{ExperimentSpec, ScenarioSpec};
use caem_wsnsim::{ScenarioConfig, Topology};

fn main() {
    let base =
        ScenarioConfig::small(PolicyKind::PureLeach, 8.0, 0).with_duration(Duration::from_secs(20));
    let spec = ExperimentSpec::paper_policies(
        vec![
            ScenarioSpec::new("uniform", base.clone()),
            ScenarioSpec::new(
                "corridor",
                base.clone().with_topology(Topology::Corridor {
                    width_fraction: 0.3,
                }),
            ),
            ScenarioSpec::new("diurnal", base.with_diurnal_traffic(20.0, 0.8)),
        ],
        2_024,
        4,
    );
    println!(
        "grid: {} scenarios x {} policies x {} seeds = {} jobs",
        spec.scenarios.len(),
        spec.policies.len(),
        spec.seeds.len(),
        spec.job_count()
    );

    // Reference: the ordinary single-process run.
    let single = spec.run();

    // The same grid across 3 workers coordinated through a shard directory.
    let dir = std::env::temp_dir().join(format!("caem_example_distrib_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let opts = DistribOptions::new(3);
    let report = spec
        .run_distributed(&dir, &opts, &ThreadSpawner::default())
        .expect("distributed run");

    let layout = ShardLayout::new(&dir);
    let manifest = GridManifest::load(&layout).expect("manifest");
    println!(
        "distributed over {} workers / {} shards under {}",
        opts.workers,
        manifest.shard_count,
        dir.display()
    );
    for store in layout.discover_worker_stores().expect("stores") {
        let records = caem_wsnsim::ExperimentStore::load(&store)
            .map(|s| s.len())
            .unwrap_or(0);
        println!(
            "  {:>24}: {records} records",
            store.file_name().unwrap().to_string_lossy()
        );
    }

    assert_eq!(
        report, single,
        "N-worker report must be bit-identical to the single-process run"
    );
    let single_bits = serde_json::to_string(&single.to_json()).expect("serialize");
    let merged_bits = serde_json::to_string(&report.to_json()).expect("serialize");
    assert_eq!(single_bits, merged_bits, "byte-identical JSON");
    println!(
        "single-process and 3-worker reports are byte-identical ({} cells, {} jobs)",
        report.cells.len(),
        report.job_count
    );
    std::fs::remove_dir_all(&dir).ok();
}
