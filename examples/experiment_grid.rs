//! Run a small replicated experiment grid through the sharded engine:
//! diverse deployments × the paper's three protocols × several seeds,
//! reported as mean ± 95 % confidence interval instead of single-seed
//! point estimates.
//!
//! ```bash
//! cargo run --release --example experiment_grid
//! ```

use caem_suite::caem::policy::PolicyKind;
use caem_suite::simcore::time::Duration;
use caem_suite::wsnsim::experiment::{ExperimentSpec, ScenarioSpec};
use caem_suite::wsnsim::{ScenarioConfig, Topology};

fn main() {
    let base =
        ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 0).with_duration(Duration::from_secs(40));

    // Three deployments the paper never evaluated, plus heterogeneity/churn.
    let spec = ExperimentSpec::paper_policies(
        vec![
            ScenarioSpec::new("uniform", base.clone()),
            ScenarioSpec::new(
                "hotspots",
                base.clone().with_topology(Topology::GaussianClusters {
                    clusters: 3,
                    sigma_m: 12.0,
                }),
            ),
            ScenarioSpec::new(
                "corridor_hetero",
                base.with_topology(Topology::Corridor {
                    width_fraction: 0.25,
                })
                .with_energy_spread(0.3)
                .with_churn_mttf_s(300.0),
            ),
        ],
        2_005,
        6, // seed replicates per cell
    );

    println!(
        "running {} jobs ({} scenarios x {} policies x {} seeds) in one parallel layer...",
        spec.job_count(),
        spec.scenarios.len(),
        spec.policies.len(),
        spec.seeds.len()
    );
    let report = spec.run();

    println!("\n== delivery rate, mean +/- 95% CI ==");
    for cell in &report.cells {
        let s = cell.metric("delivery_rate").expect("known metric");
        println!(
            "{:<18} {:<24} {:.3} +/- {:.3}  (n = {})",
            cell.scenario,
            format!("{:?}", cell.policy),
            s.mean(),
            s.ci95_half_width(),
            s.count()
        );
    }

    println!("\n== energy per delivered packet (mJ), mean +/- 95% CI ==");
    for cell in &report.cells {
        let s = cell
            .metric("mj_per_delivered_packet")
            .expect("known metric");
        println!(
            "{:<18} {:<24} {:.3} +/- {:.3}",
            cell.scenario,
            format!("{:?}", cell.policy),
            s.mean(),
            s.ci95_half_width()
        );
    }
}
